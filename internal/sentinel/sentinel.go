// Package sentinel is the always-on regression monitor: it attaches
// watches to append-open corpus sessions and re-diffs them against a
// pinned baseline on every appended segment, incrementally (only
// thread pairs whose inputs grew are recomputed — see diff.Incremental)
// and event-driven (Session.Subscribe, no polling). The first non-empty
// candidate set D = right-side differences minus the expected-change
// signatures raises a structured DivergenceEvent, fanned out to
// per-watch SSE subscribers, an optional webhook, and an in-memory ring
// of recent events.
package sentinel

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/metrics"
	"repro/internal/regression"
	"repro/internal/trace"
	"repro/internal/views"
)

// ErrMonitorClosed reports an Attach on a shut-down monitor.
var ErrMonitorClosed = errors.New("sentinel: monitor closed")

// Options configure a Monitor.
type Options struct {
	// Debounce is the quiet period after an append before a watch
	// evaluates; further appends landing inside the window are coalesced
	// into the same evaluation. 0 means DefaultDebounce; negative
	// disables debouncing (tests).
	Debounce time.Duration
	// RingSize is the per-watch ring of recent events kept for SSE
	// replay. 0 means DefaultRingSize.
	RingSize int
	// Acquire gates each evaluation on an external worker budget (the
	// engine's request pool): it blocks until a slot is free and returns
	// its release. nil means unbounded.
	Acquire func(ctx context.Context) (release func(), err error)
	// WebhookClient posts divergence events; nil uses a client with a
	// 10-second timeout.
	WebhookClient *http.Client
	// WebhookAttempts bounds delivery tries per event (0 means
	// DefaultWebhookAttempts); WebhookBackoff is the base of the
	// jittered exponential backoff between tries (0 means
	// DefaultWebhookBackoff).
	WebhookAttempts int
	WebhookBackoff  time.Duration
	// Counters receives the sentinel's observability metrics; nil
	// allocates a private set.
	Counters *metrics.SentinelCounters
}

// Defaults for Options zero values.
const (
	DefaultDebounce        = 20 * time.Millisecond
	DefaultRingSize        = 64
	DefaultWebhookAttempts = 4
	DefaultWebhookBackoff  = 100 * time.Millisecond
)

// Spec describes one watch: which live session to monitor, against
// which pinned baseline, and where to deliver divergence events.
type Spec struct {
	Session *corpus.Session
	// Baseline is the pinned left-hand web; BaselineDigest its content
	// digest (zero when the baseline is not corpus-addressable).
	Baseline       *views.Web
	BaselineDigest trace.Digest
	// Analysis names the analysis semantics (informational; default
	// "regression").
	Analysis string
	// Expected are the B-side signatures of an expected change (the
	// paper's diff(old-input₂, new-input₂)): right-side differences
	// whose signature appears here are subtracted from the candidate
	// set, mirroring D = (A − B) ∩ C. nil means every right-side
	// difference is a candidate.
	Expected map[regression.Signature]bool
	// Webhook, when non-empty, receives every divergence event as a
	// JSON POST with at-least-once retry semantics.
	Webhook string
	// DiffOpts are the differencing tunables (zero values take the
	// usual defaults).
	DiffOpts diff.ViewOptions
}

// Monitor owns the attached watches. It is safe for concurrent use.
type Monitor struct {
	opts     Options
	counters *metrics.SentinelCounters
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	mu      sync.Mutex
	watches map[string]*Watch
	seq     int
	closed  bool
}

// New creates a monitor.
func New(opts Options) *Monitor {
	if opts.Debounce == 0 {
		opts.Debounce = DefaultDebounce
	}
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	if opts.WebhookAttempts <= 0 {
		opts.WebhookAttempts = DefaultWebhookAttempts
	}
	if opts.WebhookBackoff <= 0 {
		opts.WebhookBackoff = DefaultWebhookBackoff
	}
	if opts.WebhookClient == nil {
		opts.WebhookClient = &http.Client{Timeout: 10 * time.Second}
	}
	c := opts.Counters
	if c == nil {
		c = &metrics.SentinelCounters{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Monitor{
		opts:     opts,
		counters: c,
		ctx:      ctx,
		cancel:   cancel,
		watches:  make(map[string]*Watch),
	}
}

// Counters returns the monitor's metrics.
func (m *Monitor) Counters() *metrics.SentinelCounters { return m.counters }

// WatchCount returns the number of currently attached watches.
func (m *Monitor) WatchCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.watches)
}

// Attach creates a watch and starts its evaluation loop. The session's
// current contents are evaluated immediately (a session may already be
// diverged when the watch arrives), then re-evaluated on every append
// until the session ends or the watch is detached.
func (m *Monitor) Attach(spec Spec) (*Watch, error) {
	if spec.Session == nil {
		return nil, errors.New("sentinel: spec needs a session")
	}
	if spec.Baseline == nil {
		return nil, errors.New("sentinel: spec needs a baseline web")
	}
	if spec.Analysis == "" {
		spec.Analysis = "regression"
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrMonitorClosed
	}
	m.seq++
	id := fmt.Sprintf("w%d", m.seq)
	ctx, cancel := context.WithCancel(m.ctx)
	w := &Watch{
		id:     id,
		m:      m,
		spec:   spec,
		inc:    diff.NewIncremental(spec.Baseline, spec.DiffOpts),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		ring:   make([]Event, 0, m.opts.RingSize),
	}
	m.watches[id] = w
	m.wg.Add(1)
	m.mu.Unlock()
	m.counters.WatchesOpened.Add(1)

	events, cancelSub := spec.Session.Subscribe()
	go func() {
		defer m.wg.Done()
		defer cancelSub()
		w.run(events)
	}()
	return w, nil
}

// Get resolves an attached watch by id. Watches leave the map when
// their loop ends (session over or detached).
func (m *Monitor) Get(id string) (*Watch, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.watches[id]
	return w, ok
}

// List summarizes the attached watches, sorted by id.
func (m *Monitor) List() []Info {
	m.mu.Lock()
	watches := make([]*Watch, 0, len(m.watches))
	for _, w := range m.watches {
		watches = append(watches, w)
	}
	m.mu.Unlock()
	out := make([]Info, len(watches))
	for i, w := range watches {
		out[i] = w.Info()
	}
	sortInfos(out)
	return out
}

// Detach cancels a watch: its in-flight evaluation unwinds, a terminal
// watch-closed event is emitted, and the watch leaves the monitor. It
// reports whether the id was attached.
func (m *Monitor) Detach(id string) bool {
	m.mu.Lock()
	w, ok := m.watches[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	w.cancel()
	return true
}

// Close detaches every watch and waits for all loops and pending
// webhook deliveries to finish. No goroutines outlive it.
func (m *Monitor) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// finish removes a watch whose loop ended.
func (m *Monitor) finish(w *Watch) {
	m.mu.Lock()
	delete(m.watches, w.id)
	m.mu.Unlock()
	m.counters.WatchesClosed.Add(1)
}

// Info summarizes one watch.
type Info struct {
	ID          string `json:"id"`
	Session     string `json:"session"`
	Baseline    string `json:"baseline,omitempty"`
	Analysis    string `json:"analysis"`
	Webhook     string `json:"webhook,omitempty"`
	Diverged    bool   `json:"diverged"`
	Closed      bool   `json:"closed"`
	CloseReason string `json:"close_reason,omitempty"`
	Entries     int    `json:"entries"`
	Events      uint64 `json:"events"`
	Evaluations int64  `json:"evaluations"`
	LastDirty   int    `json:"last_dirty_pairs"`
	LastPairs   int    `json:"last_pairs"`
}

// Watch is one attached session monitor. Its exported methods are safe
// for concurrent use; evaluation runs on the watch's own loop.
type Watch struct {
	id     string
	m      *Monitor
	spec   Spec
	inc    *diff.Incremental
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	ring      []Event
	nextSeq   uint64
	subs      map[int]chan struct{}
	nextSub   int
	diverged  bool
	closed    bool
	reason    string
	evals     int64
	lastStats diff.IncrementalStats
	entries   int
}

// ID returns the watch id.
func (w *Watch) ID() string { return w.id }

// Done is closed when the watch's loop has ended (terminal event
// emitted, watch removed from the monitor).
func (w *Watch) Done() <-chan struct{} { return w.done }

// Info summarizes the watch.
func (w *Watch) Info() Info {
	w.mu.Lock()
	defer w.mu.Unlock()
	info := Info{
		ID:          w.id,
		Session:     w.spec.Session.ID(),
		Analysis:    w.spec.Analysis,
		Webhook:     w.spec.Webhook,
		Diverged:    w.diverged,
		Closed:      w.closed,
		CloseReason: w.reason,
		Entries:     w.entries,
		Events:      w.nextSeq,
		Evaluations: w.evals,
		LastDirty:   w.lastStats.Dirty,
		LastPairs:   w.lastStats.Pairs,
	}
	if !w.spec.BaselineDigest.IsZero() {
		info.Baseline = w.spec.BaselineDigest.String()
	}
	return info
}

const reasonDetached = "watch detached"

// run is the watch loop: level-triggered on session events, debounced,
// one evaluation at a time. It ends — always emitting a terminal
// watch-closed event — when the session closes or aborts, the watch is
// detached, or an evaluation fails.
func (w *Watch) run(events <-chan corpus.SessionEvent) {
	defer close(w.done)
	defer w.m.finish(w)
	// The session may already hold entries (or already be diverged):
	// evaluate the backlog before waiting for the first append.
	pending := true
	for {
		if pending {
			if d := w.m.opts.Debounce; d > 0 {
				timer := time.NewTimer(d)
				if stop := w.absorb(events, timer); stop {
					timer.Stop()
					return
				}
			}
			if err := w.evaluate(); err != nil {
				if w.ctx.Err() != nil {
					w.emitClosed(reasonDetached)
				} else {
					w.emitClosed("evaluation failed: " + err.Error())
				}
				return
			}
			pending = false
			continue
		}
		select {
		case <-w.ctx.Done():
			w.emitClosed(reasonDetached)
			return
		case ev, ok := <-events:
			if !ok || ev.Terminal() {
				w.terminal(ev, ok)
				return
			}
			pending = true
		}
	}
}

// absorb waits out the debounce window, coalescing appends that land
// inside it. It returns true when the loop must stop (detach or
// terminal session event, both fully handled here).
func (w *Watch) absorb(events <-chan corpus.SessionEvent, timer *time.Timer) bool {
	for {
		select {
		case <-w.ctx.Done():
			w.emitClosed(reasonDetached)
			return true
		case ev, ok := <-events:
			if !ok || ev.Terminal() {
				w.terminal(ev, ok)
				return true
			}
			w.m.counters.Coalesced.Add(1)
		case <-timer.C:
			return false
		}
	}
}

// terminal handles the end of the session. A cleanly closed session
// gets one final evaluation first — the finishing segment may carry the
// divergence — then the terminal watch-closed event.
func (w *Watch) terminal(ev corpus.SessionEvent, ok bool) {
	if ok && ev.Closed {
		if err := w.evaluate(); err != nil && w.ctx.Err() != nil {
			w.emitClosed(reasonDetached)
			return
		}
		w.emitClosed("session closed: " + ev.Digest.String())
		return
	}
	w.emitClosed("session aborted")
}

// evaluate re-diffs the session snapshot against the baseline through
// the incremental cache and raises the divergence event on the first
// non-empty candidate set. Divergence is edge-triggered and sticky: one
// event per watch, at the first evaluation whose D is non-empty.
func (w *Watch) evaluate() error {
	if acq := w.m.opts.Acquire; acq != nil {
		release, err := acq(w.ctx)
		if err != nil {
			return err
		}
		defer release()
	}
	web := w.spec.Session.Web()
	res, st, err := w.inc.Rediff(w.ctx, web)
	if err != nil {
		return err
	}
	c := w.m.counters
	c.Evaluations.Add(1)
	c.DirtyPairs.Add(int64(st.Dirty))
	c.TotalPairs.Add(int64(st.Pairs))

	w.mu.Lock()
	w.evals++
	w.lastStats = st
	w.entries = web.Trace.Len()
	already := w.diverged
	w.mu.Unlock()
	if already {
		return nil
	}
	cands := w.candidates(res)
	if len(cands) == 0 {
		return nil
	}
	w.mu.Lock()
	w.diverged = true
	w.mu.Unlock()
	c.Divergences.Add(1)
	ev := w.append(Event{
		Kind:       EventDivergence,
		Entries:    web.Trace.Len(),
		Watermark:  trace.EntryID(web.Trace.Len() - 1),
		Candidates: len(cands),
		Summary:    summarize(res.Right, cands, maxSummary),
	})
	if w.spec.Webhook != "" {
		w.m.deliverWebhook(w.spec.Webhook, ev)
	}
	return nil
}

// candidates computes D for this evaluation: the right-side (live)
// differences, minus differences whose signature matches the expected
// change. The un-executed tail of the baseline lands in DiffLeft and is
// deliberately ignored — a live session is a prefix of its baseline
// until it finishes, and "the baseline did more" must not alarm.
func (w *Watch) candidates(res *diff.Result) []trace.EntryID {
	if len(res.DiffRight) == 0 || w.spec.Expected == nil {
		return res.DiffRight
	}
	var out []trace.EntryID
	for _, eid := range res.DiffRight {
		if !w.spec.Expected[regression.EntrySignature(res.Right.Entries[eid])] {
			out = append(out, eid)
		}
	}
	return out
}
