package sentinel

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// deliverWebhook posts ev to url asynchronously with at-least-once
// semantics: bounded attempts, jittered exponential backoff between
// them, 4xx treated as permanent (the endpoint rejected the payload —
// retrying cannot help), everything else retried. Delivery is tied to
// the monitor's lifetime, not the watch's: a watch detached right after
// diverging still gets its event out. Monitor.Close waits for pending
// deliveries.
func (m *Monitor) deliverWebhook(url string, ev Event) {
	body, err := json.Marshal(ev)
	if err != nil {
		m.counters.WebhookFailures.Add(1)
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for attempt := 0; attempt < m.opts.WebhookAttempts; attempt++ {
			if attempt > 0 {
				select {
				case <-time.After(jitteredBackoff(m.opts.WebhookBackoff, attempt)):
				case <-m.ctx.Done():
					m.counters.WebhookFailures.Add(1)
					return
				}
			}
			req, err := http.NewRequestWithContext(m.ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				m.counters.WebhookFailures.Add(1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := m.opts.WebhookClient.Do(req)
			if err != nil {
				if m.ctx.Err() != nil {
					m.counters.WebhookFailures.Add(1)
					return
				}
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode < 300:
				m.counters.WebhookDeliveries.Add(1)
				return
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				m.counters.WebhookFailures.Add(1)
				return
			}
		}
		m.counters.WebhookFailures.Add(1)
	}()
}

// jitteredBackoff is base·2^(attempt−1), uniformly jittered over
// [d/2, 3d/2) so synchronized failures don't retry in lockstep.
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
