package sentinel

import (
	"context"
	"testing"

	"repro/internal/diff"
	"repro/internal/trace"
	"repro/internal/views"
)

// BenchmarkSentinelIncrementalRediff measures the sentinel's steady
// state: a watched session that already matches its baseline takes one
// more small single-thread segment, and the watch re-diffs. The
// incremental sub-benchmark recomputes only the dirty thread pairs
// (here 1 of 16 — the quiet-session regime the O(dirty pairs) claim is
// about); the full sub-benchmark is what every evaluation would cost
// without the cache.
//
//	go test ./internal/sentinel/ -bench SentinelIncrementalRediff -benchtime 2s
func BenchmarkSentinelIncrementalRediff(b *testing.B) {
	const tailLen = 128
	base := fixture(16000, 16)
	wl := views.Build(base)
	live := trace.New("live")
	for _, e := range base.Entries {
		live.Append(e.TID, e.Method, e.Self, e.Event)
	}
	obj := trace.Repr{Loc: trace.Loc(999), Class: "Quiet", Seq: 1}
	for k := 0; k < tailLen; k++ {
		live.Append(0, "Quiet.tick/0", obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: "Quiet.tick/0"})
	}
	ib := views.NewIncrementalBuilder("live")
	if err := ib.Append(live.Entries[:base.Len()]); err != nil {
		b.Fatal(err)
	}
	snap0 := ib.Snapshot()
	if err := ib.Append(live.Entries[base.Len():]); err != nil {
		b.Fatal(err)
	}
	snap1 := ib.Snapshot()
	ctx := context.Background()

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var st diff.IncrementalStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inc := diff.NewIncremental(wl, diff.ViewOptions{})
			if _, _, err := inc.Rediff(ctx, snap0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			var err error
			if _, st, err = inc.Rediff(ctx, snap1); err != nil {
				b.Fatal(err)
			}
		}
		if st.Pairs > 0 {
			b.ReportMetric(float64(st.Dirty)/float64(st.Pairs), "dirty_ratio")
		}
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(tailLen)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.ViewDiffWebsCtx(ctx, wl, snap1, diff.ViewOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
