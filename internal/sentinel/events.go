package sentinel

import (
	"sort"
	"time"

	"repro/internal/regression"
	"repro/internal/trace"
)

// EventKind discriminates watch events.
type EventKind string

const (
	// EventDivergence is the alarm: the first evaluation whose
	// candidate set D was non-empty.
	EventDivergence EventKind = "divergence"
	// EventWatchClosed is the terminal event of every watch: session
	// closed, session aborted, watch detached, or evaluation failure.
	// Reason carries which.
	EventWatchClosed EventKind = "watch_closed"
)

// maxSummary caps the per-event candidate summary.
const maxSummary = 8

// Event is one structured watch notification. Seq is per-watch,
// monotonically increasing from 1; SSE clients resume with it. The
// Watermark is the highest live EID covered by the evaluation that
// produced the event.
type Event struct {
	Seq        uint64        `json:"seq"`
	Kind       EventKind     `json:"kind"`
	WatchID    string        `json:"watch_id"`
	SessionID  string        `json:"session_id"`
	Baseline   string        `json:"baseline,omitempty"`
	Time       time.Time     `json:"time"`
	Entries    int           `json:"entries"`
	Watermark  trace.EntryID `json:"eid_watermark"`
	Candidates int           `json:"candidates,omitempty"`
	Summary    []Candidate   `json:"summary,omitempty"`
	Reason     string        `json:"reason,omitempty"`
}

// Candidate is one summarized member of the candidate set D.
type Candidate struct {
	EID    trace.EntryID `json:"eid"`
	Kind   string        `json:"kind"`
	Method string        `json:"method,omitempty"`
	Member string        `json:"member,omitempty"`
	Class  string        `json:"class,omitempty"`
}

// summarize renders the first max candidates through the regression
// signature (kind, member, class, enclosing method) — the same
// canonicalization the post-mortem analysis reports.
func summarize(t *trace.Trace, eids []trace.EntryID, max int) []Candidate {
	if len(eids) > max {
		eids = eids[:max]
	}
	out := make([]Candidate, 0, len(eids))
	for _, eid := range eids {
		sig := regression.EntrySignature(t.Entries[eid])
		out = append(out, Candidate{
			EID:    eid,
			Kind:   sig.Kind.String(),
			Method: trace.SymStr(sig.Method),
			Member: trace.SymStr(sig.Member),
			Class:  trace.SymStr(sig.Class),
		})
	}
	return out
}

// append stamps and buffers an event, wakes subscribers, and returns
// the stamped event. The ring keeps the most recent RingSize events;
// an SSE connection replays from the ring, so a client that falls more
// than RingSize events behind misses the oldest (each watch emits at
// most one divergence and one terminal event, so in practice the ring
// holds everything).
func (w *Watch) append(ev Event) Event {
	w.mu.Lock()
	w.nextSeq++
	ev.Seq = w.nextSeq
	ev.Time = time.Now().UTC()
	ev.WatchID = w.id
	ev.SessionID = w.spec.Session.ID()
	if !w.spec.BaselineDigest.IsZero() {
		ev.Baseline = w.spec.BaselineDigest.String()
	}
	if len(w.ring) == cap(w.ring) && cap(w.ring) > 0 {
		copy(w.ring, w.ring[1:])
		w.ring[len(w.ring)-1] = ev
	} else {
		w.ring = append(w.ring, ev)
	}
	for _, ch := range w.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	w.mu.Unlock()
	w.m.counters.EventsEmitted.Add(1)
	return ev
}

// emitClosed emits the terminal watch-closed event exactly once.
func (w *Watch) emitClosed(reason string) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.reason = reason
	entries := w.entries
	w.mu.Unlock()
	w.append(Event{Kind: EventWatchClosed, Reason: reason, Entries: entries,
		Watermark: trace.EntryID(entries - 1)})
}

// EventsSince returns the buffered events with Seq > after, in order,
// and whether the watch has ended (no further events will follow the
// returned ones once ended is true and the slice drains).
func (w *Watch) EventsSince(after uint64) (events []Event, ended bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ev := range w.ring {
		if ev.Seq > after {
			events = append(events, ev)
		}
	}
	return events, w.closed
}

// Notify registers a wake-up signal: the channel receives (capacity 1,
// coalesced) whenever a new event is appended. Cancel is idempotent.
// Use with EventsSince in a level-triggered loop.
func (w *Watch) Notify() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	w.mu.Lock()
	if w.subs == nil {
		w.subs = make(map[int]chan struct{})
	}
	id := w.nextSub
	w.nextSub++
	w.subs[id] = ch
	w.mu.Unlock()
	return ch, func() {
		w.mu.Lock()
		delete(w.subs, id)
		w.mu.Unlock()
	}
}

func sortInfos(infos []Info) {
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i].ID, infos[j].ID
		if len(a) != len(b) { // w2 < w10: ids are "w<seq>"
			return len(a) < len(b)
		}
		return a < b
	})
}
