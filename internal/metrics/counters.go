package metrics

import "sync/atomic"

// SentinelCounters are the live observability counters of the
// always-on regression sentinel: how many watches exist, how much
// re-diff work the incremental cache is actually doing (the dirty-pair
// ratio is the number the O(dirty pairs) claim stands on), and how many
// divergence events were raised and delivered. All fields are updated
// atomically; a zero value is ready to use.
type SentinelCounters struct {
	WatchesOpened     atomic.Int64
	WatchesClosed     atomic.Int64
	Evaluations       atomic.Int64
	Coalesced         atomic.Int64
	DirtyPairs        atomic.Int64
	TotalPairs        atomic.Int64
	Divergences       atomic.Int64
	EventsEmitted     atomic.Int64
	WebhookDeliveries atomic.Int64
	WebhookFailures   atomic.Int64
}

// SentinelSnapshot is a point-in-time JSON-friendly copy of the
// counters, as surfaced in /stats.
type SentinelSnapshot struct {
	Watches           int64   `json:"watches"`
	WatchesOpened     int64   `json:"watches_opened"`
	Evaluations       int64   `json:"evaluations"`
	Coalesced         int64   `json:"evaluations_coalesced"`
	DirtyPairs        int64   `json:"dirty_pairs"`
	TotalPairs        int64   `json:"total_pairs"`
	DirtyPairRatio    float64 `json:"dirty_pair_ratio"`
	Divergences       int64   `json:"divergences"`
	EventsEmitted     int64   `json:"events_emitted"`
	WebhookDeliveries int64   `json:"webhook_deliveries"`
	WebhookFailures   int64   `json:"webhook_failures"`
}

// Snapshot copies the counters. Watches is derived: opened minus
// closed, i.e. the currently attached watch count.
func (c *SentinelCounters) Snapshot() SentinelSnapshot {
	s := SentinelSnapshot{
		Watches:           c.WatchesOpened.Load() - c.WatchesClosed.Load(),
		WatchesOpened:     c.WatchesOpened.Load(),
		Evaluations:       c.Evaluations.Load(),
		Coalesced:         c.Coalesced.Load(),
		DirtyPairs:        c.DirtyPairs.Load(),
		TotalPairs:        c.TotalPairs.Load(),
		Divergences:       c.Divergences.Load(),
		EventsEmitted:     c.EventsEmitted.Load(),
		WebhookDeliveries: c.WebhookDeliveries.Load(),
		WebhookFailures:   c.WebhookFailures.Load(),
	}
	if s.TotalPairs > 0 {
		s.DirtyPairRatio = float64(s.DirtyPairs) / float64(s.TotalPairs)
	}
	return s
}
