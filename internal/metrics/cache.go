package metrics

import "sync/atomic"

// CacheCounters are the observability counters of one bounded cache
// (the corpus trace and web LRUs): how often it served from memory, how
// often it had to rebuild or reload, and how much it churned. All
// fields are updated atomically; a zero value is ready to use.
type CacheCounters struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
}

// CacheSnapshot is a point-in-time JSON-friendly copy of one cache's
// counters plus its current residency, as surfaced in /stats and
// rprism-bench -json.
type CacheSnapshot struct {
	Len       int     `json:"len"` // entries currently resident
	Cap       int     `json:"cap"` // configured bound
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"` // hits / (hits + misses)
}

// Snapshot copies the counters, attaching the cache's current length
// and capacity (the caller knows those; the counters do not).
func (c *CacheCounters) Snapshot(length, capacity int) CacheSnapshot {
	s := CacheSnapshot{
		Len:       length,
		Cap:       capacity,
		Hits:      c.Hits.Load(),
		Misses:    c.Misses.Load(),
		Evictions: c.Evictions.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
