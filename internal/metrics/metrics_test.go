package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	cases := []struct {
		total, rprism, lcs int
		want               float64
	}{
		{100, 10, 10, 1.0}, // same diffs: 100%
		{100, 5, 10, 95.0 / 90.0},
		{100, 20, 10, 80.0 / 90.0},
		{0, 0, 0, 1.0},
		{100, 0, 100, 1.0}, // degenerate: LCS matched nothing
	}
	for _, c := range cases {
		if got := Accuracy(c.total, c.rprism, c.lcs); got != c.want {
			t.Errorf("Accuracy(%d,%d,%d) = %v, want %v", c.total, c.rprism, c.lcs, got, c.want)
		}
	}
}

func TestAccuracyAboveOneWhenFewerDiffs(t *testing.T) {
	prop := func(total, lcs int) bool {
		total = 10 + abs(total)%1000
		lcs = abs(lcs) % (total - 1)
		rprism := lcs / 2 // fewer diffs
		return Accuracy(total, rprism, lcs) >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 10); got != 10 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup by zero = %v", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := AccuracyBuckets()
	h.Add(0.5)  // -> 99% bucket
	h.Add(1.0)  // -> 100%
	h.Add(1.0)  // -> 100%
	h.Add(1.07) // -> 110%
	h.Add(3.0)  // -> 200% (clamped)
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[3] != 1 || h.Counts[6] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestSpeedupHistogram(t *testing.T) {
	h := SpeedupBuckets()
	h.Add(0.3)
	h.Add(7)
	h.Add(9999)
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestRender(t *testing.T) {
	h := SpeedupBuckets()
	h.Add(7)
	out := h.Render("Speedup (RPrism vs LCS)")
	if !strings.Contains(out, "10x | # (1)") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "Speedup") {
		t.Errorf("missing title:\n%s", out)
	}
}
