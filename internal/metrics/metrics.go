// Package metrics implements the evaluation measures of §5.1: accuracy
// (relative number of semantic correlations found by the views-based
// differencing vs the LCS baseline), speedup (ratio of trace-entry
// compare operations), and the histogram bucketing of Fig. 14.
package metrics

import (
	"fmt"
	"strings"
)

// Accuracy is the §5.1 formula:
//
//	((total − rprismDiffs) / total) / ((total − lcsDiffs) / total)
//
// A value above 1 means the views-based differencing identified more
// semantic correlations (fewer differences) than LCS, e.g. by detecting
// moved entries LCS inherently cannot match.
func Accuracy(totalEntries, rprismDiffs, lcsDiffs int) float64 {
	if totalEntries == 0 {
		return 1
	}
	lcsCorr := float64(totalEntries - lcsDiffs)
	if lcsCorr <= 0 {
		return 1
	}
	return float64(totalEntries-rprismDiffs) / lcsCorr
}

// Speedup is the ratio of compare operations (or wall-clock times)
// LCS / views.
func Speedup(lcsCost, viewsCost float64) float64 {
	if viewsCost <= 0 {
		return 0
	}
	return lcsCost / viewsCost
}

// Histogram is a bucketed count with the fixed bucket labels of Fig. 14.
type Histogram struct {
	Labels []string
	Edges  []float64 // upper-inclusive bucket edges, ascending
	Counts []int
}

// AccuracyBuckets are the Fig. 14(a) x-axis values (fractions, printed as
// percentages): 99%, 100%, 105%, 110%, 125%, 150%, 200%.
func AccuracyBuckets() Histogram {
	return Histogram{
		Labels: []string{"99%", "100%", "105%", "110%", "125%", "150%", "200%"},
		Edges:  []float64{0.99, 1.00, 1.05, 1.10, 1.25, 1.50, 2.00},
	}
}

// SpeedupBuckets are the Fig. 14(b) x-axis values: 0.5x through 5000x.
func SpeedupBuckets() Histogram {
	return Histogram{
		Labels: []string{"0.5x", "1x", "5x", "10x", "50x", "100x", "500x", "1000x", "2500x", "5000x"},
		Edges:  []float64{0.5, 1, 5, 10, 50, 100, 500, 1000, 2500, 5000},
	}
}

// Add places v into the first bucket whose edge is >= v (the last bucket
// absorbs anything larger).
func (h *Histogram) Add(v float64) {
	if h.Counts == nil {
		h.Counts = make([]int, len(h.Edges))
	}
	for i, e := range h.Edges {
		if v <= e || i == len(h.Edges)-1 {
			h.Counts[i]++
			return
		}
	}
}

// Render draws the histogram as rows of '#' marks — the textual analogue
// of the Fig. 14 bar charts.
func (h *Histogram) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 0
	for _, l := range h.Labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, l := range h.Labels {
		n := 0
		if i < len(h.Counts) {
			n = h.Counts[i]
		}
		fmt.Fprintf(&b, "  %*s | %s (%d)\n", width, l, strings.Repeat("#", n), n)
	}
	return b.String()
}

// Total returns the number of samples added.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
