package metrics

import "sync/atomic"

// BlobCounters are the live observability counters of the corpus blob
// tier: raw operation counts against the object store, retry pressure
// (how often the jittered-backoff wrapper had to re-attempt), transfer
// volume, and the tier's churn — hydrations pull a trace from the
// bucket back onto local disk, disk evictions push a locally cached
// trace out to make room. All fields are updated atomically; a zero
// value is ready to use.
type BlobCounters struct {
	Puts          atomic.Int64
	Gets          atomic.Int64
	Stats         atomic.Int64
	Deletes       atomic.Int64
	Lists         atomic.Int64
	Retries       atomic.Int64
	Errors        atomic.Int64
	BytesUp       atomic.Int64
	BytesDown     atomic.Int64
	Hydrations    atomic.Int64
	DiskEvictions atomic.Int64
}

// BlobSnapshot is a point-in-time JSON-friendly copy of the counters,
// as surfaced in /stats.
type BlobSnapshot struct {
	Puts          int64 `json:"puts"`
	Gets          int64 `json:"gets"`
	Stats         int64 `json:"stats"`
	Deletes       int64 `json:"deletes"`
	Lists         int64 `json:"lists"`
	Retries       int64 `json:"retries"`
	Errors        int64 `json:"errors"`
	BytesUp       int64 `json:"bytes_up"`
	BytesDown     int64 `json:"bytes_down"`
	Hydrations    int64 `json:"hydrations"`
	DiskEvictions int64 `json:"disk_evictions"`
}

// Snapshot copies the counters.
func (c *BlobCounters) Snapshot() BlobSnapshot {
	return BlobSnapshot{
		Puts:          c.Puts.Load(),
		Gets:          c.Gets.Load(),
		Stats:         c.Stats.Load(),
		Deletes:       c.Deletes.Load(),
		Lists:         c.Lists.Load(),
		Retries:       c.Retries.Load(),
		Errors:        c.Errors.Load(),
		BytesUp:       c.BytesUp.Load(),
		BytesDown:     c.BytesDown.Load(),
		Hydrations:    c.Hydrations.Load(),
		DiskEvictions: c.DiskEvictions.Load(),
	}
}

// ClusterCounters are the live observability counters of one cluster
// node: how often it forwarded requests to the digest-range owner, how
// often forwarding failed and it fell back to serving from the shared
// bucket, and the warm-hint prefetcher's activity. All fields are
// updated atomically; a zero value is ready to use.
type ClusterCounters struct {
	Forwards         atomic.Int64
	ForwardErrors    atomic.Int64
	Fallbacks        atomic.Int64
	LoopGuarded      atomic.Int64
	PrefetchHints    atomic.Int64
	PrefetchHydrates atomic.Int64
}

// ClusterSnapshot is a point-in-time JSON-friendly copy of the
// counters, as surfaced in /stats.
type ClusterSnapshot struct {
	Forwards         int64 `json:"forwards"`
	ForwardErrors    int64 `json:"forward_errors"`
	Fallbacks        int64 `json:"fallbacks"`
	LoopGuarded      int64 `json:"loop_guarded"`
	PrefetchHints    int64 `json:"prefetch_hints"`
	PrefetchHydrates int64 `json:"prefetch_hydrates"`
}

// Snapshot copies the counters.
func (c *ClusterCounters) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		Forwards:         c.Forwards.Load(),
		ForwardErrors:    c.ForwardErrors.Load(),
		Fallbacks:        c.Fallbacks.Load(),
		LoopGuarded:      c.LoopGuarded.Load(),
		PrefetchHints:    c.PrefetchHints.Load(),
		PrefetchHydrates: c.PrefetchHydrates.Load(),
	}
}
