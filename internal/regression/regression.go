// Package regression implements the regression-cause analysis algorithm
// of §4.1. Given four traces — the original (non-regressing) and new
// (regressing) program versions, each run on a regressing test case and a
// similar non-regressing test case — it computes:
//
//	A  suspected differences: orig vs new on the regressing test
//	B  expected differences:  orig vs new on the non-regressing test
//	C  regression differences: new version, non-regressing vs regressing test
//	D  = (A − B) ∩ C              (additive mode)
//	D  = (A − B) − C              (removal mode, for regressions caused by
//	                               code removed in the new version)
//
// B-subtraction works across executions via difference signatures;
// C-intersection is exact at the entry level because A and C share the
// same right-hand execution (new version, regressing input).
package regression

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/diff"
	"repro/internal/trace"
	"repro/internal/views"
)

// Input bundles the four traces of the analysis protocol. NewRegr must be
// the same execution in A and C: pass one trace, it is reused.
type Input struct {
	OrigCorrect *trace.Trace // original version, non-regressing test
	NewCorrect  *trace.Trace // new version, non-regressing test
	OrigRegr    *trace.Trace // original version, regressing test
	NewRegr     *trace.Trace // new version, regressing test
	// RemovalMode switches to D = (A − B) − C for regressions caused by
	// removal of code in the new version (§4.1).
	RemovalMode bool
	// Opts configures the views-based differencing used for all pairs.
	Opts diff.ViewOptions
}

// Side tags which trace a difference entry belongs to.
type Side uint8

const (
	// Orig is the original (left) version.
	Orig Side = iota
	// New is the new (right) version.
	New
)

// Ref locates one difference entry in the suspected set.
type Ref struct {
	Side Side
	EID  trace.EntryID
}

// SetSizes reports |A|, |B|, |C|, |D| in difference sequences — the units
// of Table 2.
type SetSizes struct {
	A, B, C, D int
}

// Analysis is the complete result.
type Analysis struct {
	A, B, C *diff.Result
	// D is the final candidate set: difference entries highly likely to be
	// responsible for the regression.
	D []Ref
	// Related indexes the difference sequences of A containing at least
	// one D entry — the "Regression Diff. Seqs" of Table 1.
	Related []int
	Sizes   SetSizes
}

// Analyze runs the three differencing passes and the set algebra. Each
// trace's view web is built exactly once here even though two of the
// traces participate in two differencing passes.
func Analyze(in Input) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), in)
}

// AnalyzeCtx is Analyze with cancellation: the four web builds and three
// differencing passes all poll ctx and abort with its error.
func AnalyzeCtx(ctx context.Context, in Input) (*Analysis, error) {
	var w Webs
	var err error
	if w.OrigCorrect, err = views.BuildCtx(ctx, in.OrigCorrect); err != nil {
		return nil, err
	}
	if w.NewCorrect, err = views.BuildCtx(ctx, in.NewCorrect); err != nil {
		return nil, err
	}
	if w.OrigRegr, err = views.BuildCtx(ctx, in.OrigRegr); err != nil {
		return nil, err
	}
	if w.NewRegr, err = views.BuildCtx(ctx, in.NewRegr); err != nil {
		return nil, err
	}
	return AnalyzeWebsCtx(ctx, w, in.RemovalMode, in.Opts)
}

// Webs bundles pre-built view webs for the four traces of the protocol,
// in the same roles as Input. NewCorrect and NewRegr each feed two
// differencing passes, so handing in cached webs (the corpus view cache)
// saves up to four web constructions per analysis.
type Webs struct {
	OrigCorrect *views.Web
	NewCorrect  *views.Web
	OrigRegr    *views.Web
	NewRegr     *views.Web
}

// AnalyzeWebs runs the analysis over pre-built webs. The webs are only
// read; concurrent analyses may share them.
func AnalyzeWebs(w Webs, removalMode bool, opts diff.ViewOptions) (*Analysis, error) {
	return AnalyzeWebsCtx(context.Background(), w, removalMode, opts)
}

// AnalyzeWebsCtx is AnalyzeWebs with cancellation: each of the three
// differencing passes polls ctx (see diff.ViewDiffWebsCtx), so a protocol
// run over four large traces aborts promptly wherever it is.
func AnalyzeWebsCtx(ctx context.Context, w Webs, removalMode bool, opts diff.ViewOptions) (*Analysis, error) {
	a, err := diff.ViewDiffWebsCtx(ctx, w.OrigRegr, w.NewRegr, opts)
	if err != nil {
		return nil, err
	}
	b, err := diff.ViewDiffWebsCtx(ctx, w.OrigCorrect, w.NewCorrect, opts)
	if err != nil {
		return nil, err
	}
	c, err := diff.ViewDiffWebsCtx(ctx, w.NewCorrect, w.NewRegr, opts)
	if err != nil {
		return nil, err
	}
	return Combine(a, b, c, removalMode), nil
}

// Combine applies the set algebra to precomputed difference results:
// a = orig-regr vs new-regr, b = orig-correct vs new-correct,
// c = new-correct vs new-regr. The right-hand traces of a and c must be
// the same execution.
func Combine(a, b, c *diff.Result, removalMode bool) *Analysis {
	an := &Analysis{A: a, B: b, C: c}

	// Signatures of expected differences (set B), per side.
	bLeftSigs := sigSet(b.Left, b.DiffLeft)
	bRightSigs := sigSet(b.Right, b.DiffRight)

	var d []Ref
	if removalMode {
		// Regression caused by code removed in the new version: the
		// tell-tale differences are on the original side. Subtract both
		// the expected differences and anything the regression
		// differences set explains (C has no original-version trace, so
		// subtraction is by signature).
		cSigs := sigSet(c.Left, c.DiffLeft)
		for s := range sigSet(c.Right, c.DiffRight) {
			cSigs[s] = true
		}
		for _, eid := range a.DiffLeft {
			sig := EntrySignature(a.Left.Entries[eid])
			if !bLeftSigs[sig] && !cSigs[sig] {
				d = append(d, Ref{Orig, eid})
			}
		}
	} else {
		// Additive mode: the cause appears in the new version's regressing
		// execution — shared between A's right side and C's right side —
		// so the intersection is exact at the entry level.
		inC := make(map[trace.EntryID]bool, len(c.DiffRight))
		for _, eid := range c.DiffRight {
			inC[eid] = true
		}
		for _, eid := range a.DiffRight {
			if !inC[eid] {
				continue
			}
			if bRightSigs[EntrySignature(a.Right.Entries[eid])] {
				continue
			}
			d = append(d, Ref{New, eid})
		}
	}
	an.D = d
	an.Related = relatedSequences(a, d)
	an.Sizes = SetSizes{
		A: len(a.Sequences),
		B: len(b.Sequences),
		C: len(c.Sequences),
		D: len(an.Related),
	}
	return an
}

// relatedSequences finds the difference sequences of A containing at
// least one D entry.
func relatedSequences(a *diff.Result, d []Ref) []int {
	inD := make(map[Ref]bool, len(d))
	for _, r := range d {
		inD[r] = true
	}
	var out []int
	for i, seq := range a.Sequences {
		hit := false
		for _, eid := range seq.Left {
			if inD[Ref{Orig, eid}] {
				hit = true
				break
			}
		}
		if !hit {
			for _, eid := range seq.Right {
				if inD[Ref{New, eid}] {
					hit = true
					break
				}
			}
		}
		if hit {
			out = append(out, i)
		}
	}
	return out
}

// Signature canonicalizes a difference entry for cross-execution
// comparison: event kind, member, target class, and enclosing method —
// all as interned symbols, so signature sets are built and probed with
// word-sized keys instead of formatted strings. Run-specific details —
// locations, sequence numbers, and concrete values (which differ across
// test inputs) — are excluded so that the same program-level difference
// observed under different inputs matches.
type Signature struct {
	Kind   trace.EventKind
	Member trace.Sym
	Class  trace.Sym
	Method trace.Sym
	NArgs  int
}

// EntrySignature computes the signature of an entry, interning any
// symbol fields a hand-built entry may still be missing.
func EntrySignature(e trace.Entry) Signature {
	ev := e.Event
	return Signature{
		Kind:   ev.Kind,
		Member: trace.EnsureSym(ev.MemberSym, ev.Member),
		Class:  trace.EnsureSym(ev.Target.ClassSym, ev.Target.Class),
		Method: trace.EnsureSym(e.MethodSym, e.Method),
		NArgs:  len(ev.Args),
	}
}

func sigSet(t *trace.Trace, eids []trace.EntryID) map[Signature]bool {
	out := make(map[Signature]bool, len(eids))
	for _, eid := range eids {
		out[EntrySignature(t.Entries[eid])] = true
	}
	return out
}

// Report renders the analysis outcome: the candidate set in full context
// (the "semantic diff" of contribution 3), one block per related
// difference sequence.
func (an *Analysis) Report(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "regression analysis: |A|=%d |B|=%d |C|=%d -> %d regression-related sequence(s), %d candidate entrie(s)\n",
		an.Sizes.A, an.Sizes.B, an.Sizes.C, an.Sizes.D, len(an.D))
	for k, idx := range an.Related {
		if max > 0 && k >= max {
			fmt.Fprintf(&b, "... %d more sequences\n", len(an.Related)-max)
			break
		}
		seq := an.A.Sequences[idx]
		fmt.Fprintf(&b, "--- candidate %d (sequence %d, %s)\n", k+1, idx+1, seq.Kind)
		for _, eid := range seq.Left {
			fmt.Fprintf(&b, "  - %s\n", an.A.Left.Entries[eid])
		}
		for _, eid := range seq.Right {
			fmt.Fprintf(&b, "  + %s\n", an.A.Right.Entries[eid])
		}
	}
	return b.String()
}

// Evaluate scores the analysis against ground truth for the experiment
// harness: which D entries touch the known-changed methods/classes.
type Evaluation struct {
	TruePositives  int // related sequences touching ground-truth sites
	FalsePositives int // related sequences not touching any site
	FalseNegatives int // ground-truth sites with no related sequence
}

// EvaluateAgainst checks each related sequence for contact with the
// ground-truth site markers (substrings matched against entry renderings,
// e.g. a method or class name known to contain the injected change).
func (an *Analysis) EvaluateAgainst(sites []string) Evaluation {
	var ev Evaluation
	hitSites := make(map[string]bool, len(sites))
	for _, idx := range an.Related {
		seq := an.A.Sequences[idx]
		touched := false
		for _, site := range sites {
			if seqTouches(an.A, seq, site) {
				touched = true
				hitSites[site] = true
			}
		}
		if touched {
			ev.TruePositives++
		} else {
			ev.FalsePositives++
		}
	}
	for _, site := range sites {
		if !hitSites[site] {
			ev.FalseNegatives++
		}
	}
	return ev
}

func seqTouches(res *diff.Result, seq diff.Sequence, site string) bool {
	for _, eid := range seq.Left {
		if strings.Contains(res.Left.Entries[eid].String(), site) {
			return true
		}
	}
	for _, eid := range seq.Right {
		if strings.Contains(res.Right.Entries[eid].String(), site) {
			return true
		}
	}
	return false
}

// SortRefs orders refs by side then entry id (deterministic output).
func SortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Side != refs[j].Side {
			return refs[i].Side < refs[j].Side
		}
		return refs[i].EID < refs[j].EID
	})
}
