package regression

import (
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

// Miniature version of the motivating example (MYFACES-1130): the new
// version extracts a filter class and passes the wrong range lower bound,
// and *also* contains unrelated evolution (extra logging) that must be
// filtered out by the expected-differences set B.
const origSrc = `
class Conv {
  Int min;
  Int max;
  Conv(Int a, Int b) { super(); this.min = a; this.max = b; }
  Bool needs(Int ch) { return ch < this.min || ch > this.max; }
}
class Proc {
  Conv conv;
  Bool active;
  void setType(String t) {
    if (t.equals("text/html")) {
      this.conv = new Conv(32, 127);
      this.active = true;
    } else {
      this.active = false;
    }
    return;
  }
  void emit(Int ch) {
    if (this.active) {
      let c = this.conv;
      if (c.needs(ch)) { Sys.print("&#" + ch + ";"); } else { Sys.print(ch); }
    } else {
      Sys.print(ch);
    }
    return;
  }
}
class Main {
  void main() {
    let p = new Proc();
    p.setType(Sys.arg(0));
    p.emit(10);
    p.emit(65);
    p.emit(200);
  }
}`

const newSrc = `
class Conv {
  Int min;
  Int max;
  Conv(Int a, Int b) { super(); this.min = a; this.max = b; }
  Bool needs(Int ch) { return ch < this.min || ch > this.max; }
}
class BinFilter {
  Conv conv;
  BinFilter() {
    super();
    this.conv = new Conv(1, 127);
  }
}
class Proc {
  Conv conv;
  Bool active;
  void setType(String t) {
    Sys.print("log: setType");
    if (t.equals("text/html")) {
      let f = new BinFilter();
      this.conv = f.conv;
      this.active = true;
    } else {
      this.active = false;
    }
    return;
  }
  void emit(Int ch) {
    if (this.active) {
      let c = this.conv;
      if (c.needs(ch)) { Sys.print("&#" + ch + ";"); } else { Sys.print(ch); }
    } else {
      Sys.print(ch);
    }
    return;
  }
}
class Main {
  void main() {
    let p = new Proc();
    p.setType(Sys.arg(0));
    p.emit(10);
    p.emit(65);
    p.emit(200);
  }
}`

func runT(t *testing.T, src, arg string) (*trace.Trace, string) {
	t.Helper()
	res, err := interp.Run(lang.MustParse(src), interp.Options{Args: []string{arg}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("runtime error: %v", res.Err)
	}
	return res.Trace, res.Output
}

func TestScenarioIsARegression(t *testing.T) {
	_, origHTML := runT(t, origSrc, "text/html")
	_, newHTML := runT(t, newSrc, "text/html")
	if origHTML == newHTML {
		t.Fatal("regressing input should change output between versions")
	}
	// Original converts ch=10 (below 32); new version does not (1..127 range).
	if !strings.Contains(origHTML, "&#10;") || strings.Contains(newHTML, "&#10;") {
		t.Fatalf("unexpected outputs:\norig: %s\nnew: %s", origHTML, newHTML)
	}
	_, origPlain := runT(t, origSrc, "text/plain")
	_, newPlain := runT(t, newSrc, "text/plain")
	// The non-regressing input yields identical *behaviour* modulo the
	// unrelated logging evolution.
	if strings.ReplaceAll(newPlain, "log: setType\n", "") != origPlain {
		t.Fatalf("non-regressing input should behave alike:\norig: %s\nnew: %s", origPlain, newPlain)
	}
}

func analyzeScenario(t *testing.T) *Analysis {
	t.Helper()
	origCorrect, _ := runT(t, origSrc, "text/plain")
	newCorrect, _ := runT(t, newSrc, "text/plain")
	origRegr, _ := runT(t, origSrc, "text/html")
	newRegr, _ := runT(t, newSrc, "text/html")
	an, err := Analyze(Input{
		OrigCorrect: origCorrect,
		NewCorrect:  newCorrect,
		OrigRegr:    origRegr,
		NewRegr:     newRegr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalysisFindsRegressionCause(t *testing.T) {
	an := analyzeScenario(t)
	if len(an.D) == 0 {
		t.Fatalf("empty candidate set\n%s", an.A.Format(10))
	}
	// The candidate entries must touch the regression chain: the wrong
	// Conv range, the BinFilter, or the diverging emit behaviour.
	for _, ref := range an.D {
		if ref.Side != New {
			t.Errorf("additive-mode candidates must be on the new side: %+v", ref)
		}
		s := an.A.Right.Entries[ref.EID].String()
		related := strings.Contains(s, "Conv") || strings.Contains(s, "BinFilter") ||
			strings.Contains(s, "needs") || strings.Contains(s, "emit") ||
			strings.Contains(s, "&#") || strings.Contains(s, "print")
		if !related {
			t.Errorf("candidate unrelated to the regression: %s", s)
		}
	}
}

func TestExpectedDifferencesSubtracted(t *testing.T) {
	an := analyzeScenario(t)
	// The unrelated logging evolution ("log: setType") appears in both
	// test cases, lands in B, and must not survive into D.
	for _, ref := range an.D {
		s := an.A.Right.Entries[ref.EID].String()
		if strings.Contains(s, "log: setType") {
			t.Errorf("expected difference not subtracted: %s", s)
		}
	}
	if an.Sizes.B == 0 {
		t.Error("expected-differences set should not be empty (logging evolution)")
	}
}

func TestCandidateSetMuchSmallerThanSuspectedSet(t *testing.T) {
	an := analyzeScenario(t)
	if an.Sizes.D == 0 {
		t.Fatal("no regression-related sequences")
	}
	if an.Sizes.D >= an.Sizes.A {
		t.Errorf("|D| = %d should be smaller than |A| = %d", an.Sizes.D, an.Sizes.A)
	}
}

func TestEvaluationScoring(t *testing.T) {
	an := analyzeScenario(t)
	ev := an.EvaluateAgainst([]string{"Conv", "BinFilter"})
	if ev.TruePositives == 0 {
		t.Errorf("no true positives: %+v\n%s", ev, an.Report(10))
	}
	if ev.FalseNegatives > 1 {
		t.Errorf("too many false negatives: %+v", ev)
	}
}

func TestRemovalMode(t *testing.T) {
	// Regression caused by *removing* code: the original calls a fixup the
	// new version dropped. Nothing new appears in the regressing run, so
	// additive intersection can't see it; removal mode looks at the
	// original side.
	orig := `
class Store {
  Int v;
  void fix() { this.v = this.v + 100; return; }
  void put(Int x) { this.v = x; return; }
}
class Main {
  void main() {
    let s = new Store();
    s.put(Sys.parseInt(Sys.arg(0)));
    if (s.v < 50) { s.fix(); }
    Sys.print(s.v);
  }
}`
	new_ := strings.Replace(orig, "if (s.v < 50) { s.fix(); }", "", 1)

	origCorrect, _ := runT(t, orig, "80") // fix not triggered: identical behaviour
	newCorrect, _ := runT(t, new_, "80")
	origRegr, _ := runT(t, orig, "10") // fix triggered only in original
	newRegr, _ := runT(t, new_, "10")

	an, err := Analyze(Input{
		OrigCorrect: origCorrect, NewCorrect: newCorrect,
		OrigRegr: origRegr, NewRegr: newRegr,
		RemovalMode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.D) == 0 {
		t.Fatalf("removal mode found nothing\n%s", an.A.Format(10))
	}
	foundFix := false
	for _, ref := range an.D {
		if ref.Side != Orig {
			t.Errorf("removal-mode candidates must be on the original side: %+v", ref)
			continue
		}
		if strings.Contains(an.A.Left.Entries[ref.EID].String(), "fix") {
			foundFix = true
		}
	}
	if !foundFix {
		t.Error("removed fix() behaviour not identified")
	}
}

func TestCombineSequencesAndSizes(t *testing.T) {
	an := analyzeScenario(t)
	if an.Sizes.A != len(an.A.Sequences) || an.Sizes.B != len(an.B.Sequences) ||
		an.Sizes.C != len(an.C.Sequences) || an.Sizes.D != len(an.Related) {
		t.Errorf("sizes inconsistent: %+v", an.Sizes)
	}
	for _, idx := range an.Related {
		if idx < 0 || idx >= len(an.A.Sequences) {
			t.Errorf("related index %d out of range", idx)
		}
	}
}

func TestReportRendering(t *testing.T) {
	an := analyzeScenario(t)
	rep := an.Report(3)
	if !strings.Contains(rep, "regression analysis") || !strings.Contains(rep, "candidate 1") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestEntrySignatureStability(t *testing.T) {
	e1 := trace.Entry{Method: "C.m/1", Event: trace.Event{
		Kind: trace.KindSet, Member: "f",
		Target: trace.Repr{Loc: 5, Class: "C", Seq: 1, Hash: 9, Str: "x"},
		Args:   []trace.Repr{trace.PrimRepr("Int", "1")},
	}}
	e2 := e1
	e2.Event.Target.Loc = 99
	e2.Event.Target.Seq = 7
	e2.Event.Args = []trace.Repr{trace.PrimRepr("Int", "2")} // different value
	if EntrySignature(e1) != EntrySignature(e2) {
		t.Error("signature must ignore locations, seqs, and concrete values")
	}
	e3 := e1
	e3.Event.Member = "g"
	if EntrySignature(e1) == EntrySignature(e3) {
		t.Error("signature must distinguish members")
	}
}

func TestCombineHandlesEmptyDiffs(t *testing.T) {
	tr1, _ := runT(t, `class Main { void main() { Sys.print(1); } }`, "")
	tr2, _ := runT(t, `class Main { void main() { Sys.print(1); } }`, "")
	a := diff.ViewDiff(tr1, tr2, diff.ViewOptions{})
	an := Combine(a, a, a, false)
	if len(an.D) != 0 || an.Sizes.D != 0 {
		t.Errorf("identical traces must yield empty D: %+v", an.Sizes)
	}
}
