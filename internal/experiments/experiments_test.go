package experiments

import (
	"strings"
	"testing"

	"repro/internal/subjects"
)

// TestRunCaseFastSubjects exercises the Table 1/2 pipeline on the small
// subjects (the full set runs in the bench harness).
func TestRunCaseFastSubjects(t *testing.T) {
	for _, s := range []subjects.Subject{subjects.MyFaces(), subjects.Xalan1725(), subjects.Xalan1802()} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r, err := RunCase(s, DefaultLCSBudget)
			if err != nil {
				t.Fatal(err)
			}
			if r.TraceEntries == 0 || r.Counts.Total == 0 {
				t.Errorf("missing basics: %+v", r)
			}
			if r.LCS.OOM {
				t.Errorf("%s should fit the LCS budget", s.Name)
			}
			if r.Views.RegrSeqs == 0 {
				t.Error("views analysis found no regression sequences")
			}
			if r.Sizes.A == 0 || r.Sizes.D == 0 {
				t.Errorf("set sizes: %+v", r.Sizes)
			}
			if r.Views.Compares >= r.LCS.Compares {
				t.Errorf("views compares %d should undercut LCS %d",
					r.Views.Compares, r.LCS.Compares)
			}
		})
	}
}

func TestDerbyOOMsUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := RunCase(subjects.Derby1633(), DefaultLCSBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !r.LCS.OOM {
		t.Errorf("Derby should exhaust the LCS budget (Table 1 shape)")
	}
	if r.Views.RegrSeqs == 0 {
		t.Error("views-based analysis must still work on the OOM case")
	}
}

func TestTablesRender(t *testing.T) {
	r, err := RunCase(subjects.MyFaces(), DefaultLCSBudget)
	if err != nil {
		t.Fatal(err)
	}
	results := []CaseResult{r}
	t1 := Table1(results)
	if !strings.Contains(t1, "MyFaces-1130") || !strings.Contains(t1, "Speedup") {
		t.Errorf("table 1:\n%s", t1)
	}
	t2 := Table2(results)
	if !strings.Contains(t2, "|A|") || !strings.Contains(t2, "MyFaces-1130") {
		t.Errorf("table 2:\n%s", t2)
	}
}

func TestQuantSmall(t *testing.T) {
	cfg := QuantConfig{Bugs: 3, ScriptStmts: 12, Scripts: 4, Seed: 77, LCSBudget: 100_000_000}
	results, err := RunQuant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.TraceEntries == 0 {
			t.Errorf("bug %d: empty trace", r.Bug)
		}
		if r.LCSFailed {
			continue
		}
		if r.Accuracy <= 0 {
			t.Errorf("bug %d: accuracy %v", r.Bug, r.Accuracy)
		}
		if r.Speedup <= 0 {
			t.Errorf("bug %d: speedup %v", r.Bug, r.Speedup)
		}
	}
	a := Fig14a(results)
	b := Fig14b(results)
	if !strings.Contains(a, "Accuracy") || !strings.Contains(b, "Speedup") {
		t.Errorf("figures:\n%s\n%s", a, b)
	}
	if s := QuantSummary(results); !strings.Contains(s, "Bug") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestMotivatingExample(t *testing.T) {
	out, err := MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true positive") || !strings.Contains(out, "candidate 1") {
		t.Errorf("walkthrough:\n%s", out)
	}
}
