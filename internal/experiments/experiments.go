// Package experiments orchestrates the paper's evaluation (§5): the
// four real-life case studies (Tables 1 and 2), the motivating-example
// walkthrough (§4.2), and the quantitative iBUGS-style assessment over
// injected regressions (Fig. 14). It is shared by the bench harness
// (bench_test.go) and the rprism-bench command.
package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/diff"
	"repro/internal/inject"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lcs"
	"repro/internal/metrics"
	"repro/internal/regression"
	"repro/internal/subjects"
	"repro/internal/views"
)

// DefaultLCSBudget is the DP-table cell budget for the case studies,
// scaled from the paper's 32 GB machine to our trace sizes so that the
// largest (Derby) trace exhausts it while the others fit — reproducing
// Table 1's "(out of memory failure at 32GB)" row.
const DefaultLCSBudget = 200_000_000

// SideResult is one differencing approach's half of a Table 1 row.
type SideResult struct {
	NumDiffs     int
	DiffSeqs     int
	RegrSeqs     int
	FalsePos     int
	FalseNeg     int
	AnalysisSecs float64
	MemMB        float64
	Compares     int64
	OOM          bool
}

// CaseResult is one benchmark row of Tables 1 and 2.
type CaseResult struct {
	Name         string
	LOC          int
	TraceEntries int
	TracingSecs  float64
	LCS          SideResult
	Views        SideResult
	WallSpeedup  float64
	Counts       views.Counts        // Table 2: views in the original version
	Sizes        regression.SetSizes // Table 2: |A| |B| |C| |D|
}

// RunCase executes the full protocol for one subject with both
// differencing approaches.
func RunCase(s subjects.Subject, lcsBudget int64) (CaseResult, error) {
	res := CaseResult{Name: s.Name, LOC: s.LOC()}

	start := time.Now()
	tr, err := s.Run()
	if err != nil {
		return res, err
	}
	res.TracingSecs = time.Since(start).Seconds()
	res.TraceEntries = tr.OrigRegr.Len()
	res.Counts = views.Build(tr.OrigRegr).Count()

	// Views-based analysis.
	start = time.Now()
	an, err := regression.Analyze(regression.Input{
		OrigCorrect: tr.OrigCorrect, NewCorrect: tr.NewCorrect,
		OrigRegr: tr.OrigRegr, NewRegr: tr.NewRegr,
		RemovalMode: s.RemovalMode,
	})
	if err != nil {
		return res, err
	}
	viewsSecs := time.Since(start).Seconds()
	ev := an.EvaluateAgainst(s.Sites)
	res.Views = SideResult{
		NumDiffs:     an.A.NumDiffs(),
		DiffSeqs:     len(an.A.Sequences),
		RegrSeqs:     len(an.Related),
		FalsePos:     ev.FalsePositives,
		FalseNeg:     ev.FalseNegatives,
		AnalysisSecs: viewsSecs,
		MemMB:        float64(an.A.Stats.MemBytes+an.B.Stats.MemBytes+an.C.Stats.MemBytes) / 1e6,
		Compares:     an.A.Stats.Compares,
	}
	res.Sizes = an.Sizes

	// LCS-based analysis under the memory budget.
	start = time.Now()
	lres, lcsErr := lcsAnalyze(tr, s, lcsBudget)
	lcsSecs := time.Since(start).Seconds()
	if lcsErr != nil {
		if !errors.Is(lcsErr, lcs.ErrMemoryBudget) {
			return res, lcsErr
		}
		res.LCS = SideResult{OOM: true, AnalysisSecs: lcsSecs}
	} else {
		lres.AnalysisSecs = lcsSecs
		res.LCS = lres
		if viewsSecs > 0 {
			res.WallSpeedup = lcsSecs / viewsSecs
		}
	}
	return res, nil
}

func lcsAnalyze(tr *subjects.Traces, s subjects.Subject, budget int64) (SideResult, error) {
	opts := diff.LCSOptions{MemoryBudget: budget}
	a, err := diff.LCSDiff(tr.OrigRegr, tr.NewRegr, opts)
	if err != nil {
		return SideResult{}, err
	}
	b, err := diff.LCSDiff(tr.OrigCorrect, tr.NewCorrect, opts)
	if err != nil {
		return SideResult{}, err
	}
	c, err := diff.LCSDiff(tr.NewCorrect, tr.NewRegr, opts)
	if err != nil {
		return SideResult{}, err
	}
	an := regression.Combine(a, b, c, s.RemovalMode)
	ev := an.EvaluateAgainst(s.Sites)
	return SideResult{
		NumDiffs: a.NumDiffs(),
		DiffSeqs: len(a.Sequences),
		RegrSeqs: len(an.Related),
		FalsePos: ev.FalsePositives,
		FalseNeg: ev.FalseNegatives,
		MemMB:    float64(a.Stats.MemBytes+b.Stats.MemBytes+c.Stats.MemBytes) / 1e6,
		Compares: a.Stats.Compares,
	}, nil
}

// RunAllCases runs every case-study subject.
func RunAllCases(budget int64) ([]CaseResult, error) {
	var out []CaseResult
	for _, s := range subjects.All() {
		r, err := RunCase(s, budget)
		if err != nil {
			return nil, fmt.Errorf("case %s: %w", s.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Table1 renders the benchmark/analysis characteristics table.
func Table1(results []CaseResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: benchmark and analysis characteristics")
	fmt.Fprintln(w, "Benchmark\tLOC\tTrace\tTracing\t| LCS:\tDiffs\tSeqs\tRegrSeqs\tFP\tFN\tSecs\tMemMB\t| Views:\tDiffs\tSeqs\tRegrSeqs\tFP\tFN\tSecs\tMemMB\tSpeedup")
	for _, r := range results {
		lcsPart := "(out of memory failure)\t\t\t\t\t\t"
		speed := "-"
		if !r.LCS.OOM {
			lcsPart = fmt.Sprintf("%d\t%d\t%d\t%d\t%d\t%.2f\t%.1f",
				r.LCS.NumDiffs, r.LCS.DiffSeqs, r.LCS.RegrSeqs, r.LCS.FalsePos, r.LCS.FalseNeg,
				r.LCS.AnalysisSecs, r.LCS.MemMB)
			speed = fmt.Sprintf("%.1fx", r.WallSpeedup)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t|\t%s\t|\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.1f\t%s\n",
			r.Name, r.LOC, r.TraceEntries, r.TracingSecs, lcsPart,
			r.Views.NumDiffs, r.Views.DiffSeqs, r.Views.RegrSeqs,
			r.Views.FalsePos, r.Views.FalseNeg,
			r.Views.AnalysisSecs, r.Views.MemMB, speed)
	}
	w.Flush()
	// The §6 dynamic-slicing comparison: differences as a fraction of
	// executed events.
	fmt.Fprintln(&b, "\nCandidate differences as % of trace entries (cf. dynamic slicing, §6):")
	for _, r := range results {
		if r.TraceEntries > 0 {
			fmt.Fprintf(&b, "  %-14s %.4f%%\n", r.Name,
				100*float64(r.Views.RegrSeqs)/float64(r.TraceEntries))
		}
	}
	return b.String()
}

// Table2 renders the view counts and analysis set sizes.
func Table2(results []CaseResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 2: number of views (original version) and analysis set sizes")
	fmt.Fprintln(w, "Benchmark\tTotal views\tThread\tMethod\tTargetObj\tActiveObj\t|A|\t|B|\t|C|\t|D|")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.Counts.Total, r.Counts.Thread, r.Counts.Method,
			r.Counts.TargetObject, r.Counts.ActiveObject,
			r.Sizes.A, r.Sizes.B, r.Sizes.C, r.Sizes.D)
	}
	w.Flush()
	return b.String()
}

// ---- quantitative assessment (Fig. 14) ----

// QuantResult is one injected-regression experiment.
type QuantResult struct {
	Bug          int
	Mutation     inject.Mutation
	Script       string
	TraceEntries int
	LCSFailed    bool
	Accuracy     float64
	Speedup      float64
	ViewsDiffs   int
	LCSDiffs     int
}

// QuantConfig parameterizes the Fig. 14 experiment.
type QuantConfig struct {
	Bugs        int   // number of injected regressions (paper: 14 usable)
	ScriptStmts int   // statements per generated script (trace length knob)
	Scripts     int   // size of the test-script pool
	Seed        int64 // base seed
	LCSBudget   int64 // DP budget; exhaustion marks the bug "LCS failed"
}

// DefaultQuantConfig mirrors the paper's scale, shrunk to simulator
// proportions: traces in the thousands of entries with one larger outlier.
func DefaultQuantConfig() QuantConfig {
	return QuantConfig{Bugs: 14, ScriptStmts: 15, Scripts: 8, Seed: 1009, LCSBudget: 300_000_000}
}

// RunQuant injects regressions into the Rhino-like subject per the paper's
// root-cause distribution, finds a failing test script for each, traces
// working and regressing versions, and measures accuracy and speedup of
// views-based differencing against the optimized LCS.
func RunQuant(cfg QuantConfig) ([]QuantResult, error) {
	prog := lang.MustParse(subjects.RhinoSource())

	// Test pool: deterministic scripts of varying sizes, with one longer
	// outlier (the paper's traces were mostly 10K-100K with outliers).
	scripts := make([]string, cfg.Scripts)
	for i := range scripts {
		n := cfg.ScriptStmts * (1 + i%3)
		if i == cfg.Scripts-1 {
			n = cfg.ScriptStmts * 8
		}
		scripts[i] = subjects.GenScript(n, cfg.Seed+int64(i))
	}
	baseline := make([]string, len(scripts))
	for i, sc := range scripts {
		out, err := runScript(prog, sc)
		if err != nil {
			return nil, fmt.Errorf("baseline script %d: %w", i, err)
		}
		baseline[i] = out
	}

	var out []QuantResult
	for bug := 0; bug < cfg.Bugs; bug++ {
		seed := cfg.Seed + int64(bug)*104729
		failing := -1
		mutated, mut, ok := inject.InjectValidated(prog, seed, 200, func(m *lang.Program) bool {
			failing = -1
			for i, sc := range scripts {
				got, err := runScript(m, sc)
				if err != nil {
					return false // mutation broke the interpreter wholesale
				}
				if got != baseline[i] {
					failing = i
					return true
				}
			}
			return false
		})
		if !ok {
			return nil, fmt.Errorf("bug %d: could not inject a test-failing regression", bug)
		}

		origRes, err := interp.Run(prog, interp.Options{Args: []string{scripts[failing]}})
		if err != nil {
			return nil, err
		}
		newRes, err := interp.Run(mutated, interp.Options{Args: []string{scripts[failing]}})
		if err != nil {
			return nil, err
		}

		q := QuantResult{Bug: bug, Mutation: mut, Script: scripts[failing],
			TraceEntries: origRes.Trace.Len()}
		v := diff.ViewDiff(origRes.Trace, newRes.Trace, diff.ViewOptions{})
		q.ViewsDiffs = v.NumDiffs()
		l, lerr := diff.LCSDiff(origRes.Trace, newRes.Trace,
			diff.LCSOptions{MemoryBudget: cfg.LCSBudget})
		if lerr != nil {
			if !errors.Is(lerr, lcs.ErrMemoryBudget) {
				return nil, lerr
			}
			q.LCSFailed = true
		} else {
			q.LCSDiffs = l.NumDiffs()
			total := origRes.Trace.Len() + newRes.Trace.Len()
			q.Accuracy = metrics.Accuracy(total, v.NumDiffs(), l.NumDiffs())
			q.Speedup = metrics.Speedup(float64(l.Stats.Compares), float64(v.Stats.Compares))
		}
		out = append(out, q)
	}
	return out, nil
}

func runScript(p *lang.Program, script string) (string, error) {
	res, err := interp.Run(p, interp.Options{Args: []string{script}, MaxSteps: 2_000_000})
	if err != nil {
		return "", err
	}
	if res.Err != nil {
		// Aborts (e.g. stack underflow from an injected bug) are a
		// legitimate failing-test outcome.
		return res.Output + "ERROR: " + res.Err.Msg, nil
	}
	return res.Output, nil
}

// Fig14a renders the accuracy histogram.
func Fig14a(results []QuantResult) string {
	h := metrics.AccuracyBuckets()
	for _, r := range results {
		if !r.LCSFailed {
			h.Add(r.Accuracy)
		}
	}
	return h.Render("Fig. 14(a): Accuracy (RPrism vs LCS)")
}

// Fig14b renders the speedup histogram.
func Fig14b(results []QuantResult) string {
	h := metrics.SpeedupBuckets()
	for _, r := range results {
		if !r.LCSFailed {
			h.Add(r.Speedup)
		}
	}
	return h.Render("Fig. 14(b): Speedup (RPrism vs LCS)")
}

// QuantSummary renders the per-bug detail lines.
func QuantSummary(results []QuantResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Bug\tCategory\tTrace\tViewsDiffs\tLCSDiffs\tAccuracy\tSpeedup\tLCS")
	for _, r := range results {
		status := "ok"
		if r.LCSFailed {
			status = "OOM"
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%.1f%%\t%.1fx\t%s\n",
			r.Bug, r.Mutation.Category, r.TraceEntries, r.ViewsDiffs, r.LCSDiffs,
			100*r.Accuracy, r.Speedup, status)
	}
	w.Flush()
	return b.String()
}

// MotivatingExample runs the §4.2 walkthrough on the MyFaces subject and
// renders the analysis report.
func MotivatingExample() (string, error) {
	s := subjects.MyFaces()
	tr, err := s.Run()
	if err != nil {
		return "", err
	}
	an, err := regression.Analyze(regression.Input{
		OrigCorrect: tr.OrigCorrect, NewCorrect: tr.NewCorrect,
		OrigRegr: tr.OrigRegr, NewRegr: tr.NewRegr,
	})
	if err != nil {
		return "", err
	}
	ev := an.EvaluateAgainst(s.Sites)
	var b strings.Builder
	b.WriteString("Motivating example (MYFACES-1130), §4.2 protocol\n")
	fmt.Fprintf(&b, "ground-truth contact: %d true positive, %d false positive, %d false negative sequences\n",
		ev.TruePositives, ev.FalsePositives, ev.FalseNegatives)
	b.WriteString(an.Report(7))
	return b.String(), nil
}
