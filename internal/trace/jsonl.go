package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL interchange: one entry per line, for consumption by external
// tooling (spreadsheets, jq, notebook analysis). The gob format of
// Encode/ReadFrom remains the canonical on-disk form; JSONL is lossless
// too and round-trips through ReadJSONL.

type jsonEntry struct {
	EID    EntryID   `json:"eid"`
	TID    ThreadID  `json:"tid"`
	Method string    `json:"method,omitempty"`
	Self   *Repr     `json:"self,omitempty"`
	Kind   string    `json:"kind"`
	Target *Repr     `json:"target,omitempty"`
	Member string    `json:"member,omitempty"`
	Args   []Repr    `json:"args,omitempty"`
	Stack  []Frame   `json:"stack,omitempty"`
}

var kindByName = map[string]EventKind{}

func init() {
	for k := KindEOF; k <= KindEnd; k++ {
		kindByName[k.String()] = k
	}
}

// WriteJSONL writes the trace as JSON lines.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Entries {
		je := jsonEntry{
			EID: e.EID, TID: e.TID, Method: e.Method,
			Kind: e.Event.Kind.String(), Member: e.Event.Member,
			Args: e.Event.Args, Stack: e.Event.Stack,
		}
		if !e.Self.IsZero() {
			self := e.Self
			je.Self = &self
		}
		if !e.Event.Target.IsZero() {
			target := e.Event.Target
			je.Target = &target
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: jsonl encode entry %d: %w", e.EID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reconstructs a trace written by WriteJSONL.
func ReadJSONL(name string, r io.Reader) (*Trace, error) {
	t := New(name)
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var je jsonEntry
		if err := dec.Decode(&je); err == io.EOF {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl decode: %w", err)
		}
		kind, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: jsonl: unknown event kind %q", je.Kind)
		}
		e := Entry{
			EID: je.EID, TID: je.TID, Method: je.Method,
			Event: Event{Kind: kind, Member: je.Member, Args: je.Args, Stack: je.Stack},
		}
		if je.Self != nil {
			e.Self = *je.Self
		}
		if je.Target != nil {
			e.Event.Target = *je.Target
		}
		t.Entries = append(t.Entries, e)
	}
}
