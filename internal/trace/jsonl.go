package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL interchange: one record per line, for consumption by external
// tooling (spreadsheets, jq, notebook analysis) and for streaming traces
// between processes. The gob format of Encode/ReadFrom remains the
// canonical on-disk form; JSONL is lossless too and round-trips through
// ReadJSONL.
//
// Version 2 (current): the first line is a header record carrying the
// trace name and a compact symbol block — the distinct strings referenced
// by the trace, in order of first appearance. Entry lines then reference
// symbols by their 1-based index into that block, so a reader interns
// each distinct string exactly once and streams the (much smaller) entry
// lines without re-interning or re-hashing per line.
//
// Version 1 (legacy, still readable): no header; every line is one entry
// with all strings inlined. ReadJSONL detects the format from the first
// record, so traces saved by the old writer remain loadable.

const (
	jsonlFormat  = "rprism-trace"
	jsonlVersion = 2
)

type jsonHeader struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Symbols []string `json:"symbols"`
}

// jsonEntryV1 is the legacy self-contained entry line.
type jsonEntryV1 struct {
	EID    EntryID  `json:"eid"`
	TID    ThreadID `json:"tid"`
	Method string   `json:"method,omitempty"`
	Self   *Repr    `json:"self,omitempty"`
	Kind   string   `json:"kind"`
	Target *Repr    `json:"target,omitempty"`
	Member string   `json:"member,omitempty"`
	Args   []Repr   `json:"args,omitempty"`
	Stack  []Frame  `json:"stack,omitempty"`
}

// WireRepr is the v2 wire form of Repr: strings become symbol refs.
type WireRepr struct {
	Loc  Loc    `json:"l,omitempty"`
	Cls  uint32 `json:"c,omitempty"`
	Hash uint64 `json:"h,omitempty"`
	Str  uint32 `json:"s,omitempty"`
	Seq  int    `json:"q,omitempty"`
}

type WireFrame struct {
	Method uint32    `json:"m,omitempty"`
	Caller *WireRepr `json:"cr,omitempty"`
	Callee *WireRepr `json:"ce,omitempty"`
}

type WireEntry struct {
	EID    EntryID     `json:"eid"`
	TID    ThreadID    `json:"tid"`
	Method uint32      `json:"m,omitempty"`
	Self   *WireRepr   `json:"self,omitempty"`
	Kind   string      `json:"kind"`
	Target *WireRepr   `json:"t,omitempty"`
	Member uint32      `json:"mem,omitempty"`
	Args   []WireRepr  `json:"args,omitempty"`
	Stack  []WireFrame `json:"stack,omitempty"`
}

var kindByName = map[string]EventKind{}

func init() {
	for k := KindEOF; k <= KindEnd; k++ {
		kindByName[k.String()] = k
	}
}

// fileSyms assigns compact 1-based file-local symbol ids in order of
// first appearance, independent of the process-wide Sym values.
type fileSyms struct {
	ids  map[string]uint32
	strs []string
}

func (fs *fileSyms) id(s string) uint32 {
	if s == "" {
		return 0
	}
	if id, ok := fs.ids[s]; ok {
		return id
	}
	if fs.ids == nil {
		fs.ids = make(map[string]uint32)
	}
	id := uint32(len(fs.strs) + 1)
	fs.ids[s] = id
	fs.strs = append(fs.strs, s)
	return id
}

func (fs *fileSyms) repr(r Repr) *WireRepr {
	if r.IsZero() {
		return nil
	}
	return &WireRepr{Loc: r.Loc, Cls: fs.id(r.Class), Hash: r.Hash, Str: fs.id(r.Str), Seq: r.Seq}
}

// collect registers every symbol-bearing string of an entry, in the
// same field order the encoder references them (so file ids read as
// "first appearance" order).
func (fs *fileSyms) collect(e *Entry) {
	fs.id(e.Method)
	fs.id(e.Self.Class)
	fs.id(e.Self.Str)
	fs.id(e.Event.Target.Class)
	fs.id(e.Event.Target.Str)
	fs.id(e.Event.Member)
	for i := range e.Event.Args {
		fs.id(e.Event.Args[i].Class)
		fs.id(e.Event.Args[i].Str)
	}
	for i := range e.Event.Stack {
		f := &e.Event.Stack[i]
		fs.id(f.Method)
		fs.id(f.Caller.Class)
		fs.id(f.Caller.Str)
		fs.id(f.Callee.Class)
		fs.id(f.Callee.Str)
	}
}

// WriteJSONL writes the trace as JSON lines in the v2 format: a symbol
// header followed by symbol-referencing entry lines. Two passes — a
// symbol-collection scan, then direct encoding — so the extra memory is
// O(distinct symbols), not a second copy of the trace.
func (t *Trace) WriteJSONL(w io.Writer) error {
	fs := &fileSyms{}
	for i := range t.Entries {
		fs.collect(&t.Entries[i])
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonHeader{Format: jsonlFormat, Version: jsonlVersion, Name: t.Name, Symbols: fs.strs}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: jsonl encode header: %w", err)
	}
	for i := range t.Entries {
		je := encodeWireEntry(fs, &t.Entries[i])
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: jsonl encode entry %d: %w", je.EID, err)
		}
	}
	return bw.Flush()
}

// encodeWireEntry translates one entry into its symbol-referencing wire
// form, registering any new strings in fs. Shared by the JSONL writer
// (which pre-collects symbols for its header) and the streaming encoder
// (which ships symbol deltas alongside each segment frame).
func encodeWireEntry(fs *fileSyms, e *Entry) WireEntry {
	je := WireEntry{
		EID: e.EID, TID: e.TID,
		Method: fs.id(e.Method),
		Self:   fs.repr(e.Self),
		Kind:   e.Event.Kind.String(),
		Target: fs.repr(e.Event.Target),
		Member: fs.id(e.Event.Member),
	}
	if len(e.Event.Args) > 0 {
		je.Args = make([]WireRepr, len(e.Event.Args))
		for k, a := range e.Event.Args {
			je.Args[k] = WireRepr{Loc: a.Loc, Cls: fs.id(a.Class), Hash: a.Hash, Str: fs.id(a.Str), Seq: a.Seq}
		}
	}
	if len(e.Event.Stack) > 0 {
		je.Stack = make([]WireFrame, len(e.Event.Stack))
		for k, f := range e.Event.Stack {
			je.Stack[k] = WireFrame{Method: fs.id(f.Method), Caller: fs.repr(f.Caller), Callee: fs.repr(f.Callee)}
		}
	}
	return je
}

// ReadJSONL reconstructs a trace written by WriteJSONL — either format
// version. The name parameter is used when the stream carries no header
// (v1) or an empty header name.
func ReadJSONL(name string, r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var first json.RawMessage
	if err := dec.Decode(&first); err == io.EOF {
		return New(name), nil
	} else if err != nil {
		return nil, fmt.Errorf("trace: jsonl decode: %w", err)
	}
	var hdr jsonHeader
	if err := json.Unmarshal(first, &hdr); err == nil && hdr.Format == jsonlFormat {
		if hdr.Version != jsonlVersion {
			return nil, fmt.Errorf("trace: jsonl: unsupported version %d", hdr.Version)
		}
		if hdr.Name != "" {
			name = hdr.Name
		}
		return readJSONLv2(name, hdr.Symbols, dec)
	}
	return readJSONLv1(name, first, dec)
}

// readJSONLv2 interns the symbol block once, then streams entry lines,
// resolving symbol refs by array index — no per-line hashing.
func readJSONLv2(name string, symbols []string, dec *json.Decoder) (*Trace, error) {
	var wt wireTable
	wt.add(symbols)
	t := New(name)
	for {
		var je WireEntry
		if err := dec.Decode(&je); err == io.EOF {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl decode: %w", err)
		}
		e, err := wt.entry(&je)
		if err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, e)
	}
}

// wireTable resolves wire symbol refs back to interned symbols and their
// canonical strings. The table grows monotonically via add — the JSONL
// reader adds one header block, the streaming decoder adds each frame's
// symbol delta — and refs index the cumulative table (1-based; 0 is the
// empty string).
type wireTable struct {
	syms []Sym
	strs []string
}

// add interns a block of symbol strings and appends them to the table.
func (wt *wireTable) add(symbols []string) {
	if wt.syms == nil {
		wt.syms = make([]Sym, 1, len(symbols)+1)
		wt.strs = make([]string, 1, len(symbols)+1)
	}
	for _, s := range symbols {
		sym := Intern(s)
		wt.syms = append(wt.syms, sym)
		wt.strs = append(wt.strs, SymStr(sym)) // share the table's backing string
	}
}

// addBytes interns a block of symbol strings from their raw bytes and
// appends them to the table — the RSEG loader's batch path: one global
// lock round trip for the whole block, no per-string copy for strings
// the process has already interned.
func (wt *wireTable) addBytes(bs [][]byte) {
	if wt.syms == nil {
		wt.syms = make([]Sym, 1, len(bs)+1)
		wt.strs = make([]string, 1, len(bs)+1)
	}
	wt.syms, wt.strs = Symbols.InternBatch(bs, wt.syms, wt.strs)
}

func (wt *wireTable) resolve(id uint32) (Sym, string, error) {
	if int(id) >= len(wt.syms) {
		return NoSym, "", fmt.Errorf("trace: wire: symbol ref %d out of range (%d symbols)", id, len(wt.syms)-1)
	}
	return wt.syms[id], wt.strs[id], nil
}

func (wt *wireTable) repr(jr *WireRepr) (Repr, error) {
	if jr == nil {
		return Repr{}, nil
	}
	cls, clsStr, err := wt.resolve(jr.Cls)
	if err != nil {
		return Repr{}, err
	}
	str, strStr, err := wt.resolve(jr.Str)
	if err != nil {
		return Repr{}, err
	}
	return Repr{Loc: jr.Loc, Class: clsStr, Hash: jr.Hash, Str: strStr, Seq: jr.Seq,
		ClassSym: cls, StrSym: str}, nil
}

// entry decodes one wire entry, resolving every symbol ref against the
// cumulative table. The result carries both canonical strings and
// interned Syms, so it enters the pipeline fully keyed.
func (wt *wireTable) entry(je *WireEntry) (Entry, error) {
	kind, ok := kindByName[je.Kind]
	if !ok {
		return Entry{}, fmt.Errorf("trace: wire: unknown event kind %q", je.Kind)
	}
	mSym, mStr, err := wt.resolve(je.Method)
	if err != nil {
		return Entry{}, err
	}
	memSym, memStr, err := wt.resolve(je.Member)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		EID: je.EID, TID: je.TID, Method: mStr, MethodSym: mSym,
		Event: Event{Kind: kind, Member: memStr, MemberSym: memSym},
	}
	if e.Self, err = wt.repr(je.Self); err != nil {
		return Entry{}, err
	}
	if e.Event.Target, err = wt.repr(je.Target); err != nil {
		return Entry{}, err
	}
	if len(je.Args) > 0 {
		e.Event.Args = make([]Repr, len(je.Args))
		for k := range je.Args {
			if e.Event.Args[k], err = wt.repr(&je.Args[k]); err != nil {
				return Entry{}, err
			}
		}
	}
	if len(je.Stack) > 0 {
		e.Event.Stack = make([]Frame, len(je.Stack))
		for k := range je.Stack {
			jf := &je.Stack[k]
			fmSym, fmStr, err := wt.resolve(jf.Method)
			if err != nil {
				return Entry{}, err
			}
			f := Frame{Method: fmStr, MethodSym: fmSym}
			if f.Caller, err = wt.repr(jf.Caller); err != nil {
				return Entry{}, err
			}
			if f.Callee, err = wt.repr(jf.Callee); err != nil {
				return Entry{}, err
			}
			e.Event.Stack[k] = f
		}
	}
	return e, nil
}

// readJSONLv1 reads the legacy headerless format, starting from the
// already-consumed first record. Entries are interned on the way in.
func readJSONLv1(name string, first json.RawMessage, dec *json.Decoder) (*Trace, error) {
	t := New(name)
	appendV1 := func(raw []byte) error {
		var je jsonEntryV1
		if err := json.Unmarshal(raw, &je); err != nil {
			return fmt.Errorf("trace: jsonl decode: %w", err)
		}
		kind, ok := kindByName[je.Kind]
		if !ok {
			return fmt.Errorf("trace: jsonl: unknown event kind %q", je.Kind)
		}
		e := Entry{
			EID: je.EID, TID: je.TID, Method: je.Method,
			Event: Event{Kind: kind, Member: je.Member, Args: je.Args, Stack: je.Stack},
		}
		if je.Self != nil {
			e.Self = *je.Self
		}
		if je.Target != nil {
			e.Event.Target = *je.Target
		}
		internEntry(&e, true)
		t.Entries = append(t.Entries, e)
		return nil
	}
	if err := appendV1(first); err != nil {
		return nil, err
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl decode: %w", err)
		}
		if err := appendV1(raw); err != nil {
			return nil, err
		}
	}
}
