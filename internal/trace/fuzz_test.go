package trace

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzRSEGDecode throws arbitrary bytes at the full RSEG read path:
// structural parse, symbol block, every thread column, full
// materialization. The contract under fuzzing is total: any input either
// decodes or fails with a *FormatError — no panics, no unbounded
// allocations, no other error type.
func FuzzRSEGDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RSEG"))
	f.Add(rsegImage(f, New("empty"), RSEGOptions{}))
	f.Add(rsegImage(f, multithreadedTrace(), RSEGOptions{}))
	f.Add(rsegImage(f, multithreadedTrace(), RSEGOptions{Compress: true}))
	f.Add(rsegImage(f, manyThreadTrace(5, 7), RSEGOptions{}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenRSEGBytes(data, "fuzz")
		if err != nil {
			requireFormatError(t, err)
			return
		}
		for _, tid := range r.ThreadIDs() {
			if _, err := r.Thread(tid); err != nil {
				requireFormatError(t, err)
			}
		}
		if _, err := r.Trace(); err != nil {
			requireFormatError(t, err)
		}
	})
}

func requireFormatError(t *testing.T, err error) {
	t.Helper()
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("decode failed with %T (%v), want *FormatError", err, err)
	}
}

// FuzzWireDecoder drives the streaming segment-frame decoder with
// arbitrary JSON payloads — the bytes a hostile or broken capture client
// could POST at rprism-serve. Decoding may fail, but must never panic.
func FuzzWireDecoder(f *testing.F) {
	var enc WireEncoder
	tr := multithreadedTrace()
	for i := 0; i+4 <= tr.Len(); i += 4 {
		if raw, err := json.Marshal(enc.Segment(tr.Entries[i : i+4])); err == nil {
			f.Add(raw)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"symbols":["a"],"entries":[{"eid":0,"tid":0,"kind":"call","m":1}]}`))
	f.Add([]byte(`{"entries":[{"kind":"call","m":99}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var seg WireSegment
		if err := json.Unmarshal(data, &seg); err != nil {
			return
		}
		var dec WireDecoder
		if _, err := dec.Segment(seg); err != nil {
			return // malformed frames may error; they must not panic
		}
	})
}
