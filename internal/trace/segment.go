package trace

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segmentIndex extracts the numeric segment index from a path of the
// form <dir>/<name>.<index>.seg.
func segmentIndex(path, name string) (int, bool) {
	base := filepath.Base(path)
	mid, ok := strings.CutPrefix(base, name+".")
	if !ok {
		return 0, false
	}
	mid, ok = strings.CutSuffix(mid, ".seg")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(mid)
	return n, err == nil && n >= 0
}

// sortSegmentPaths orders segment files numerically by their segment
// index, not lexicographically by filename: our own writer zero-pads to
// six digits, but foreign producers (and writers that outlive the pad
// width) emit bare indices, where string order would interleave seg.10
// between seg.1 and seg.2. Paths without a parseable index sort after
// the indexed ones, by name — the id-consecutiveness check then reports
// them rather than silently reordering.
func sortSegmentPaths(paths []string, name string) {
	sort.SliceStable(paths, func(i, j int) bool {
		ni, oki := segmentIndex(paths[i], name)
		nj, okj := segmentIndex(paths[j], name)
		switch {
		case oki && okj:
			return ni < nj
		case oki != okj:
			return oki
		default:
			return paths[i] < paths[j]
		}
	})
}

// SegmentWriter implements RPRISM's smart trace segmentation (§5): long
// executions are recorded as a series of relatively short trace segments;
// once a segment finishes, its data is offloaded to disk and the tracing
// memory reclaimed. Entry ids remain globally consecutive across segments
// so that view links (which are trace indices) survive segmentation.
type SegmentWriter struct {
	dir     string
	name    string
	limit   int    // entries per segment before a flush
	format  Format // on-disk encoding of each segment
	current *Trace
	base    EntryID // eid of the first entry in the current segment
	next    EntryID
	flushed int
}

// NewSegmentWriter creates a writer that stores segments of at most limit
// entries under dir, in the default format (RSEG). A limit of 0 means
// unbounded (a single segment).
func NewSegmentWriter(dir, name string, limit int) (*SegmentWriter, error) {
	return NewSegmentWriterFormat(dir, name, limit, FormatRSEG)
}

// NewSegmentWriterFormat is NewSegmentWriter with an explicit segment
// encoding — the migration hook for producing legacy gob/JSONL segment
// sets. Loaders sniff per segment, so mixed directories stay readable.
func NewSegmentWriterFormat(dir, name string, limit int, format Format) (*SegmentWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: segment dir: %w", err)
	}
	return &SegmentWriter{dir: dir, name: name, limit: limit, format: format, current: New(name)}, nil
}

// Append records an entry, flushing the current segment to disk when the
// segment limit is reached. It returns the globally consecutive entry id.
func (w *SegmentWriter) Append(tid ThreadID, method string, self Repr, ev Event) (EntryID, error) {
	id := w.next
	w.next++
	e := Entry{EID: id, TID: tid, Method: method, Self: self, Event: ev}
	internEntry(&e, false)
	w.current.Entries = append(w.current.Entries, e)
	if w.limit > 0 && len(w.current.Entries) >= w.limit {
		if err := w.Flush(); err != nil {
			return id, err
		}
	}
	return id, nil
}

// Flush writes the current segment to disk and starts a fresh one.
func (w *SegmentWriter) Flush() error {
	if len(w.current.Entries) == 0 {
		return nil
	}
	path := filepath.Join(w.dir, fmt.Sprintf("%s.%06d.seg", w.name, w.flushed))
	if err := w.current.SaveFormat(path, w.format); err != nil {
		return err
	}
	w.flushed++
	w.base = w.next
	w.current = New(w.name)
	return nil
}

// Close flushes any remaining entries.
func (w *SegmentWriter) Close() error { return w.Flush() }

// SegmentLoadReport describes what LoadSegmentsReport recovered: how
// many segments were read and whether a truncated trailing segment
// (crash mid-write) was skipped.
type SegmentLoadReport struct {
	// Segments is the number of segment files successfully loaded.
	Segments int
	// SkippedTail is the path of a trailing segment dropped because it
	// failed to decode ("" when the load was clean).
	SkippedTail string
	// Warning is a human-readable account of the skipped tail.
	Warning string
}

// Truncated reports whether a trailing segment was skipped.
func (r SegmentLoadReport) Truncated() bool { return r.SkippedTail != "" }

// LoadSegments reassembles a segmented trace written by SegmentWriter,
// verifying that entry ids are globally consecutive. A truncated
// trailing segment — the signature of a crash mid-write — is skipped
// with a logged warning rather than failing the whole load; use
// LoadSegmentsReport to observe the skip programmatically.
func LoadSegments(dir, name string) (*Trace, error) {
	t, rep, err := LoadSegmentsReport(dir, name)
	if err != nil {
		return nil, err
	}
	if rep.Truncated() {
		log.Printf("trace: %s", rep.Warning)
	}
	return t, nil
}

// LoadSegmentsReport is LoadSegments returning a load report instead of
// logging. Decode failure of the *last* segment resyncs: the readable
// prefix is returned along with a report naming the dropped file. Decode
// failure of any earlier segment — corruption inside the sequence, which
// skipping would silently hole — still fails the load, as does a first
// segment so damaged that nothing is recoverable.
func LoadSegmentsReport(dir, name string) (*Trace, *SegmentLoadReport, error) {
	pattern := filepath.Join(dir, name+".*.seg")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("trace: no segments match %q", pattern)
	}
	sortSegmentPaths(paths, name)
	out := New(name)
	rep := &SegmentLoadReport{}
	for i, p := range paths {
		seg, err := Load(p)
		if err != nil {
			if i == len(paths)-1 && len(out.Entries) > 0 {
				rep.SkippedTail = p
				rep.Warning = fmt.Sprintf(
					"skipped truncated trailing segment %s (crash mid-write?): %v; recovered %d entries from %d segment(s)",
					p, err, len(out.Entries), rep.Segments)
				return out, rep, nil
			}
			return nil, nil, err
		}
		for _, e := range seg.Entries {
			if int(e.EID) != len(out.Entries) {
				return nil, nil, fmt.Errorf("trace: segment %s: entry id %d out of order (want %d)",
					p, e.EID, len(out.Entries))
			}
			out.Entries = append(out.Entries, e)
		}
		rep.Segments++
	}
	return out, rep, nil
}
