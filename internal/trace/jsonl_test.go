package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// multithreadedTrace builds a trace with forks, per-thread activity, and
// spawn-ancestry stacks — the shape segmented multi-thread runs produce.
func multithreadedTrace() *Trace {
	tr := New("mt")
	main := Repr{Loc: 1, Class: "Main", Seq: 1}
	ancestry := []Frame{{Method: "Main.main/0", Caller: Repr{}, Callee: main}}
	tr.Append(0, "Main.main/0", main, Event{Kind: KindInit, Member: "Main", Target: main})
	tr.Append(0, "Main.main/0", main, Event{Kind: KindFork, Member: "1", Stack: ancestry})
	tr.Append(1, "Main.main/0$spawn1", main, Event{Kind: KindCall,
		Target: Repr{Loc: 2, Class: "Worker", Seq: 1}, Member: "Worker.run/0",
		Args: []Repr{PrimRepr("Int", "7")}})
	tr.Append(0, "Main.main/0", main, Event{Kind: KindFork, Member: "2", Stack: ancestry})
	tr.Append(2, "Main.main/0$spawn2", main, Event{Kind: KindSet,
		Target: Repr{Loc: 2, Class: "Worker", Seq: 1}, Member: "done",
		Args: []Repr{PrimRepr("Bool", "true")}})
	tr.Append(1, "Main.main/0$spawn1", main, Event{Kind: KindEnd, Stack: ancestry})
	tr.Append(2, "Main.main/0$spawn2", main, Event{Kind: KindEnd, Stack: ancestry})
	tr.Append(0, "Main.main/0", main, Event{Kind: KindEnd})
	return tr
}

func TestJSONLRoundTripMultithreaded(t *testing.T) {
	tr := multithreadedTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL("ignored", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mt" {
		t.Errorf("name = %q, want header name %q", got.Name, "mt")
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip %d entries, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Entries {
		if !reflect.DeepEqual(tr.Entries[i], got.Entries[i]) {
			t.Errorf("entry %d mismatch:\n got %+v\nwant %+v", i, got.Entries[i], tr.Entries[i])
		}
	}
	if !reflect.DeepEqual(got.ThreadIDs(), tr.ThreadIDs()) {
		t.Errorf("thread ids %v, want %v", got.ThreadIDs(), tr.ThreadIDs())
	}
}

func TestJSONLWritesSymbolHeader(t *testing.T) {
	tr := multithreadedTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	var hdr jsonHeader
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("first line is not a header: %v", err)
	}
	if hdr.Format != jsonlFormat || hdr.Version != jsonlVersion {
		t.Errorf("header = %+v", hdr)
	}
	if len(hdr.Symbols) == 0 {
		t.Fatal("header carries no symbols")
	}
	seen := make(map[string]bool)
	for _, s := range hdr.Symbols {
		if s == "" {
			t.Error("empty string must not be in the symbol block")
		}
		if seen[s] {
			t.Errorf("symbol %q duplicated in header", s)
		}
		seen[s] = true
	}
	if !seen["Main.main/0"] || !seen["Worker.run/0"] {
		t.Errorf("expected method symbols missing from header: %v", hdr.Symbols)
	}
	// Entry lines must not repeat the interned strings.
	rest := buf.String()[len(first)+1:]
	if strings.Contains(rest, "Main.main/0") {
		t.Error("entry lines still inline symbol strings")
	}
}

// TestJSONLReadsLegacyV1 pins the backward-compatibility guarantee:
// traces saved by the old headerless writer (one self-contained entry
// per line, all strings inlined) remain loadable.
func TestJSONLReadsLegacyV1(t *testing.T) {
	legacy := strings.Join([]string{
		`{"eid":0,"tid":0,"method":"Main.main/0","self":{"Loc":1,"Class":"Main","Hash":0,"Str":"","Seq":1},"kind":"init","target":{"Loc":2,"Class":"C","Hash":9,"Str":"C:[]","Seq":1},"member":"C","args":[{"Loc":0,"Class":"Int","Hash":3,"Str":"Int:[32]","Seq":0}]}`,
		`{"eid":1,"tid":0,"method":"Main.main/0","kind":"fork","member":"1","stack":[{"Method":"Main.main/0","Caller":{"Loc":0,"Class":"","Hash":0,"Str":"","Seq":0},"Callee":{"Loc":1,"Class":"Main","Hash":0,"Str":"","Seq":1}}]}`,
		`{"eid":2,"tid":1,"method":"w","kind":"end"}`,
	}, "\n") + "\n"
	got, err := ReadJSONL("legacy", strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("loaded %d entries, want 3", got.Len())
	}
	e0 := got.Entries[0]
	if e0.Method != "Main.main/0" || e0.Event.Member != "C" || e0.Event.Target.Class != "C" {
		t.Errorf("v1 strings not restored: %+v", e0)
	}
	if e0.MethodSym == NoSym || e0.Event.Target.ClassSym == NoSym {
		t.Error("v1 entries must be interned on load")
	}
	if got.Entries[1].Event.Stack[0].MethodSym == NoSym {
		t.Error("v1 stack frames must be interned on load")
	}
	// Symbols must be the same ids a v2 load of equal strings would get.
	if e0.MethodSym != Intern("Main.main/0") {
		t.Error("v1 load interned into a different id space")
	}
}

func TestJSONLRejectsBadSymbolRef(t *testing.T) {
	in := `{"format":"rprism-trace","version":2,"name":"x","symbols":["a"]}` + "\n" +
		`{"eid":0,"tid":0,"kind":"call","mem":7}` + "\n"
	if _, err := ReadJSONL("x", strings.NewReader(in)); err == nil {
		t.Error("out-of-range symbol ref must be rejected")
	}
}

func TestJSONLRejectsUnsupportedVersion(t *testing.T) {
	in := `{"format":"rprism-trace","version":99,"name":"x","symbols":[]}` + "\n"
	if _, err := ReadJSONL("x", strings.NewReader(in)); err == nil {
		t.Error("unknown version must be rejected")
	}
}

func TestJSONLEmptyStream(t *testing.T) {
	got, err := ReadJSONL("empty", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "empty" {
		t.Errorf("empty stream loaded as %q with %d entries", got.Name, got.Len())
	}
}
