package trace

import (
	"encoding/json"
	"reflect"
	"testing"
)

// streamFixture builds a small trace exercising every symbol-bearing
// field: methods, classes, value strings, args, and fork stacks.
func streamFixture() *Trace {
	t := New("stream")
	self := Repr{Loc: 1, Class: "Main", Seq: 1}
	other := Repr{Loc: 2, Class: "Worker", Seq: 1}
	str := Repr{Class: "String", Hash: 99, Str: "hello"}
	t.Append(0, "Main.main/0", self, Event{Kind: KindCall, Target: other, Member: "Worker.run/1", Args: []Repr{str}})
	t.Append(0, "Main.main/0", self, Event{Kind: KindFork, Member: "1", Stack: []Frame{
		{Method: "Main.main/0", Caller: Repr{}, Callee: self},
	}})
	t.Append(1, "Worker.run/1", other, Event{Kind: KindGet, Target: other, Member: "state", Args: []Repr{str}})
	t.Append(1, "Worker.run/1", other, Event{Kind: KindReturn, Target: other, Member: "Worker.run/1"})
	t.Append(1, "", Repr{}, Event{Kind: KindEnd, Stack: []Frame{{Method: "Worker.run/1", Callee: other}}})
	return t
}

func TestWireSegmentRoundTrip(t *testing.T) {
	tr := streamFixture()
	var enc WireEncoder
	var dec WireDecoder

	// Stream in two batches so the second frame's symbol delta excludes
	// everything the first already shipped.
	segA := enc.Segment(tr.Entries[:2])
	segB := enc.Segment(tr.Entries[2:])
	if len(segA.Symbols) == 0 {
		t.Fatal("first segment shipped no symbols")
	}
	for _, s := range segB.Symbols {
		for _, prev := range segA.Symbols {
			if s == prev {
				t.Errorf("symbol %q shipped twice", s)
			}
		}
	}

	// Frames survive JSON (the actual wire) and decode back.
	var got []Entry
	for _, seg := range []WireSegment{segA, segB} {
		raw, err := json.Marshal(seg)
		if err != nil {
			t.Fatal(err)
		}
		var back WireSegment
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		entries, err := dec.Segment(back)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, entries...)
	}
	if len(got) != tr.Len() {
		t.Fatalf("decoded %d entries, want %d", len(got), tr.Len())
	}
	if !reflect.DeepEqual(got, tr.Entries) {
		t.Errorf("round-trip mismatch:\n got %v\nwant %v", got, tr.Entries)
	}
	if enc.SymbolCount() != dec.SymbolCount() {
		t.Errorf("symbol tables diverged: encoder %d, decoder %d", enc.SymbolCount(), dec.SymbolCount())
	}
}

func TestWireDecoderRejectsDanglingRef(t *testing.T) {
	var dec WireDecoder
	_, err := dec.Segment(WireSegment{Entries: []WireEntry{{Kind: "call", Method: 7}}})
	if err == nil {
		t.Error("decoder accepted a symbol ref with no symbol block")
	}
}

func TestWireDecoderRejectsUnknownKind(t *testing.T) {
	var dec WireDecoder
	_, err := dec.Segment(WireSegment{Entries: []WireEntry{{Kind: "warp"}}})
	if err == nil {
		t.Error("decoder accepted an unknown event kind")
	}
}

func TestWireSegmentEmpty(t *testing.T) {
	var enc WireEncoder
	var dec WireDecoder
	entries, err := dec.Segment(enc.Segment(nil))
	if err != nil || entries != nil {
		t.Errorf("empty segment round-trip: entries=%v err=%v", entries, err)
	}
}
