package trace

import (
	"fmt"
	"hash/fnv"
	"strings"
	"unicode/utf8"
)

// MaxReprString is the truncation limit for the human-readable part of a
// value representation. RPRISM truncated Java toString output to 128
// characters (§5); we keep the same bound.
const MaxReprString = 128

// Serialization is the recursive value representation r of Fig. 8:
// either a primitive D:[d] or a class form C:[r̄] over the field values.
type Serialization struct {
	Type   string
	Prim   string          // primitive literal, when Fields is nil
	Fields []Serialization // field serializations, for class forms
	IsPrim bool
}

// Prim returns a primitive serialization D:[d].
func Prim(typeName, literal string) Serialization {
	return Serialization{Type: typeName, Prim: literal, IsPrim: true}
}

// Object returns a class serialization C:[r̄].
func Object(class string, fields []Serialization) Serialization {
	return Serialization{Type: class, Fields: fields}
}

// String renders the serialization in the C:[…] / D:[d] notation of Fig. 8,
// truncated to at most MaxReprString bytes on a rune boundary (a cut
// inside a multi-byte UTF-8 rune would make the two halves of a split
// rune render as garbage and, worse, make truncated representations of
// equal prefixes compare unequal).
func (s Serialization) String() string {
	var b strings.Builder
	s.render(&b)
	out := b.String()
	if len(out) > MaxReprString {
		cut := MaxReprString
		for cut > 0 && !utf8.RuneStart(out[cut]) {
			cut--
		}
		out = out[:cut]
	}
	return out
}

func (s Serialization) render(b *strings.Builder) {
	if b.Len() > MaxReprString {
		return // already beyond the truncation point; stop descending
	}
	b.WriteString(s.Type)
	b.WriteString(":[")
	if s.IsPrim {
		b.WriteString(s.Prim)
	} else {
		for i, f := range s.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			f.render(b)
		}
	}
	b.WriteByte(']')
}

// HashValue returns a 64-bit fingerprint of the full (untruncated)
// serialization. A zero result is remapped so that 0 can mean "empty
// representation".
func (s Serialization) HashValue() uint64 {
	h := fnv.New64a()
	s.feed(h)
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

func (s Serialization) feed(h interface{ Write([]byte) (int, error) }) {
	_, _ = h.Write([]byte(s.Type))
	_, _ = h.Write([]byte{'('})
	if s.IsPrim {
		_, _ = h.Write([]byte(s.Prim))
	} else {
		for _, f := range s.Fields {
			f.feed(h)
			_, _ = h.Write([]byte{','})
		}
	}
	_, _ = h.Write([]byte{')'})
}

// PrimRepr builds the representation of a primitive value:
// E′#(D(d)) = ⟨·, D:[d]⟩.
func PrimRepr(typeName string, literal string) Repr {
	s := Prim(typeName, literal)
	return Repr{Loc: NoLoc, Class: typeName, Hash: s.HashValue(), Str: s.String()}
}

// ObjectRepr builds the representation of a heap object from its location,
// class, creation sequence number, and recursive serialization. If
// hasValue is false the value representation is forced empty, modelling
// objects whose hashCode/toString are not meaningful across versions (§5).
func ObjectRepr(loc Loc, class string, seq int, s Serialization, hasValue bool) Repr {
	r := Repr{Loc: loc, Class: class, Seq: seq}
	if hasValue {
		r.Hash = s.HashValue()
		r.Str = s.String()
	}
	return r
}

// FormatEntries renders a compact, line-per-entry text dump of a slice of
// entries — handy in goldens, error messages, and the CLI.
func FormatEntries(entries []Entry) string {
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}
