package trace

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Encode serializes the trace in a binary format (gob) suitable for the
// offline analysis pipeline: RPRISM collects traces during execution and
// analyzes them after they have been serialized to disk (§5).
//
// The entries' process-local Sym fields ride along (gob has no field
// exclusion) and are discarded by ReadFrom's re-interning; stripping
// them would cost a deep copy of every entry on save, so the few bytes
// per entry are accepted. Readers must never trust stored Sym values.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(t); err != nil {
		return fmt.Errorf("trace: encode %q: %w", t.Name, err)
	}
	return bw.Flush()
}

// ReadFrom deserializes a trace previously written with Encode. The gob
// stream carries the canonical strings; Sym fields stored by the writing
// process are ids into *its* symbol table, so they are re-interned into
// this process's table here.
func ReadFrom(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t.RehashSyms()
	return &t, nil
}

// ReadAny reads a trace of any supported format from a stream, sniffing
// the encoding (RSEG, JSONL, or gob) from the first bytes. The name
// labels the trace for formats that do not carry one (JSONL) and errors.
// It is the upload-endpoint counterpart of Load: a bounded body whose
// format the client chose.
func ReadAny(name string, r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: read %s: %w", name, err)
	}
	switch SniffFormat(prefix) {
	case FormatRSEG:
		// RSEG is indexed from the tail, so a stream must land in memory
		// before parsing; upload paths already bound the body size.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read %s: %w", name, err)
		}
		rd, err := OpenRSEGBytes(data, name)
		if err != nil {
			return nil, err
		}
		return rd.Trace()
	case FormatJSONL:
		return ReadJSONL(name, br)
	default:
		return ReadFrom(br)
	}
}

// Save writes the trace to a file in the default on-disk format (RSEG;
// see rseg.go). Load reads any supported format back, so files written
// by earlier gob-only versions of Save remain loadable.
func (t *Trace) Save(path string) error { return t.SaveFormat(path, FormatRSEG) }

// SaveFormat writes the trace to a file in an explicit format — the
// migration hook for tooling (rprism convert) that must produce legacy
// encodings.
func (t *Trace) SaveFormat(path string, format Format) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	switch format {
	case FormatRSEG:
		err = t.WriteRSEG(f)
	case FormatGob:
		err = t.Encode(f)
	case FormatJSONL:
		err = t.WriteJSONL(f)
	default:
		err = fmt.Errorf("trace: save: unknown format %v", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// SniffFormat detects the on-disk format of a trace file from its first
// bytes: the RSEG magic, a JSON object open (JSONL, both versions), or
// anything else (gob, whose streams for our types begin with a small
// type-descriptor length byte — never '{' or 'R').
func SniffFormat(prefix []byte) Format {
	switch {
	case len(prefix) >= 4 && string(prefix[:4]) == rsegMagic:
		return FormatRSEG
	case len(prefix) >= 2 && prefix[0] == '{' && prefix[1] == '"':
		return FormatJSONL
	default:
		return FormatGob
	}
}

// SniffFile detects the format of a trace file on disk.
func SniffFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatGob, fmt.Errorf("trace: sniff: %w", err)
	}
	defer f.Close()
	var prefix [4]byte
	n, err := io.ReadFull(f, prefix[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return FormatGob, fmt.Errorf("trace: sniff %s: %w", path, err)
	}
	return SniffFormat(prefix[:n]), nil
}

// Load reads a trace from a file written by Save (any format version:
// RSEG, gob, or JSONL — detected from the file's first bytes).
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	var prefix [4]byte
	n, rerr := io.ReadFull(f, prefix[:])
	if rerr != nil && rerr != io.ErrUnexpectedEOF && rerr != io.EOF {
		return nil, fmt.Errorf("trace: load %s: %w", path, rerr)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	switch SniffFormat(prefix[:n]) {
	case FormatRSEG:
		return LoadRSEG(path)
	case FormatJSONL:
		return ReadJSONL(filepath.Base(path), f)
	default:
		return ReadFrom(f)
	}
}

// LoadRSEG eagerly loads an RSEG file: map, materialize every thread,
// release the mapping. The FromFile engine source and the segment
// reassembler land here via Load's sniffing; callers that want lazy
// per-thread access use OpenRSEG directly.
func LoadRSEG(path string) (*Trace, error) {
	r, err := OpenRSEG(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Trace()
}
