package trace

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Encode serializes the trace in a binary format (gob) suitable for the
// offline analysis pipeline: RPRISM collects traces during execution and
// analyzes them after they have been serialized to disk (§5).
//
// The entries' process-local Sym fields ride along (gob has no field
// exclusion) and are discarded by ReadFrom's re-interning; stripping
// them would cost a deep copy of every entry on save, so the few bytes
// per entry are accepted. Readers must never trust stored Sym values.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(t); err != nil {
		return fmt.Errorf("trace: encode %q: %w", t.Name, err)
	}
	return bw.Flush()
}

// ReadFrom deserializes a trace previously written with Encode. The gob
// stream carries the canonical strings; Sym fields stored by the writing
// process are ids into *its* symbol table, so they are re-interned into
// this process's table here.
func ReadFrom(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t.RehashSyms()
	return &t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	if err := t.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace from a file written by Save.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}
