package trace

import (
	"fmt"
	"strings"
)

// Stats summarizes a trace: entry counts by kind, thread count, and the
// number of distinct methods and objects observed. rprism-bench prints
// these as the "Trace Entries" style columns of Table 1.
type Stats struct {
	Entries  int
	ByKind   map[EventKind]int
	Threads  int
	Methods  int
	Objects  int
	Classes  int
	MaxDepth int // deepest fork ancestry observed
}

// ComputeStats scans the trace once and returns its statistics.
func ComputeStats(t *Trace) Stats {
	s := Stats{ByKind: make(map[EventKind]int)}
	threads := make(map[ThreadID]bool)
	methods := make(map[Sym]bool)
	objects := make(map[Loc]bool)
	classes := make(map[Sym]bool)
	for _, e := range t.Entries {
		if e.IsEOF() {
			continue
		}
		s.Entries++
		s.ByKind[e.Event.Kind]++
		threads[e.TID] = true
		if e.Method != "" {
			methods[EnsureSym(e.MethodSym, e.Method)] = true
		}
		if e.Event.Kind == KindCall || e.Event.Kind == KindReturn {
			methods[EnsureSym(e.Event.MemberSym, e.Event.Member)] = true
		}
		if e.Event.Target.Loc != NoLoc {
			objects[e.Event.Target.Loc] = true
			classes[EnsureSym(e.Event.Target.ClassSym, e.Event.Target.Class)] = true
		}
		if e.Self.Loc != NoLoc {
			objects[e.Self.Loc] = true
			classes[EnsureSym(e.Self.ClassSym, e.Self.Class)] = true
		}
		if n := len(e.Event.Stack); n > s.MaxDepth {
			s.MaxDepth = n
		}
	}
	s.Threads = len(threads)
	s.Methods = len(methods)
	s.Objects = len(objects)
	s.Classes = len(classes)
	return s
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entries=%d threads=%d methods=%d objects=%d classes=%d",
		s.Entries, s.Threads, s.Methods, s.Objects, s.Classes)
	for k := KindGet; k <= KindEnd; k++ {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(&b, " %s=%d", k, n)
		}
	}
	return b.String()
}
