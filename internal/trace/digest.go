package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Digest is the content address of a trace: a SHA-256 over the canonical
// entry encoding. Two traces have the same digest exactly when their
// entry sequences are semantically identical, regardless of the process
// that produced them, the symbol-table ids their entries carry, or the
// name they were saved under. The corpus store keys everything — disk
// segments, the decoded-trace LRU, the memoized view webs — by Digest.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex, the form used in file
// names and HTTP ids.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d == Digest{} }

// ParseDigest parses the hex form produced by Digest.String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("trace: digest %q: %w", s, err)
	}
	if len(b) != len(d) {
		return d, fmt.Errorf("trace: digest %q: want %d hex bytes, got %d", s, len(d), len(b))
	}
	copy(d[:], b)
	return d, nil
}

// WriteCanonical writes the canonical binary encoding of the trace's
// entries to w: a fixed field order with varint framing, independent of
// gob type negotiation and of the process-local Sym fields (which gob
// would include). The trace name is deliberately excluded — digests
// address content, so the same execution uploaded under two names
// deduplicates to one stored trace.
func (t *Trace) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &canonWriter{w: bw}
	cw.uvarint(uint64(len(t.Entries)))
	for i := range t.Entries {
		e := &t.Entries[i]
		cw.varint(int64(e.EID))
		cw.varint(int64(e.TID))
		cw.str(e.Method)
		cw.repr(&e.Self)
		cw.uvarint(uint64(e.Event.Kind))
		cw.str(e.Event.Member)
		cw.repr(&e.Event.Target)
		cw.uvarint(uint64(len(e.Event.Args)))
		for j := range e.Event.Args {
			cw.repr(&e.Event.Args[j])
		}
		cw.uvarint(uint64(len(e.Event.Stack)))
		for j := range e.Event.Stack {
			f := &e.Event.Stack[j]
			cw.str(f.Method)
			cw.repr(&f.Caller)
			cw.repr(&f.Callee)
		}
	}
	if cw.err != nil {
		return fmt.Errorf("trace: canonical encode %q: %w", t.Name, cw.err)
	}
	return bw.Flush()
}

// CanonicalBytes returns the canonical encoding as a byte slice.
func (t *Trace) CanonicalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteCanonical(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ComputeDigest hashes the canonical encoding. It streams through the
// hash without materializing the encoded bytes, so digesting a large
// trace costs no extra memory.
func (t *Trace) ComputeDigest() Digest {
	h := sha256.New()
	// sha256.Write never fails, so WriteCanonical cannot either.
	_ = t.WriteCanonical(h)
	var d Digest
	h.Sum(d[:0])
	return d
}

// canonWriter serializes primitive fields in the canonical order,
// latching the first error (the sticky-error idiom of bufio).
type canonWriter struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (cw *canonWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(p)
}

func (cw *canonWriter) uvarint(v uint64) {
	n := binary.PutUvarint(cw.buf[:], v)
	cw.write(cw.buf[:n])
}

func (cw *canonWriter) varint(v int64) {
	n := binary.PutVarint(cw.buf[:], v)
	cw.write(cw.buf[:n])
}

func (cw *canonWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	if cw.err == nil && len(s) > 0 {
		_, cw.err = io.WriteString(cw.w, s)
	}
}

// repr writes the version-independent Repr fields; Sym fields are
// process-local and never enter the canonical form.
func (cw *canonWriter) repr(r *Repr) {
	cw.varint(int64(r.Loc))
	cw.str(r.Class)
	cw.uvarint(r.Hash)
	cw.str(r.Str)
	cw.varint(int64(r.Seq))
}
