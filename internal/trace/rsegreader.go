package trace

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Reader is a lazily materializing view over one RSEG file. Opening a
// reader maps the file (no read of the column data), validates the
// structural shell (header, footer, block index — a few pages), and
// interns the symbol block once. Thread columns decode on first touch:
// an analysis that visits two of a trace's thirty threads pays the
// decode cost of exactly two thread blocks; the rest of the file is
// never paged in.
//
// Decoded entries never alias the mapping (strings are interned copies,
// everything else is value fields), so they outlive Close.
//
// A Reader is safe for concurrent use; concurrent first touches of the
// same thread are serialized per reader.
type Reader struct {
	f     *rsegFile
	close func() error
	wt    wireTable

	mu      sync.Mutex
	threads map[ThreadID]*readerThread
	matCnt  int // thread blocks materialized
	matEnt  int // entries materialized
	full    *Trace
}

type readerThread struct {
	once    sync.Once
	entries []Entry
	err     error
}

// ReaderStats reports how much of the file a Reader has actually
// decoded — the observable form of the lazy-materialization contract.
type ReaderStats struct {
	Threads             int   // thread blocks in the file
	ThreadsMaterialized int   // thread blocks decoded so far
	Entries             int   // entries in the file
	EntriesMaterialized int   // entries decoded so far
	MappedBytes         int64 // size of the mapped image
	Symbols             int   // distinct strings in the symbol block
}

// OpenRSEG maps an RSEG file and validates its structure. The column
// data stays cold until threads are touched. Close releases the mapping.
func OpenRSEG(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: rseg open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("trace: rseg open: %w", err)
	}
	data, release, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("trace: rseg mmap %s: %w", path, err)
	}
	r, err := newReader(data, path)
	if err != nil {
		release()
		return nil, err
	}
	r.close = release
	return r, nil
}

// OpenRSEGBytes opens a reader over an in-memory RSEG image. The name
// labels FormatErrors ("" reads as <memory>). The reader does not copy
// data; the caller must keep it immutable until Close.
func OpenRSEGBytes(data []byte, name string) (*Reader, error) {
	return newReader(data, name)
}

func newReader(data []byte, path string) (*Reader, error) {
	f, err := parseRSEG(data, path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, threads: make(map[ThreadID]*readerThread, len(f.threads))}
	// Interning the symbol block up front is the one eager step: every
	// thread block references it, it is typically a few KB, and paying
	// it once here keeps Thread() allocation-free for strings.
	if err := f.symbolsInto(&r.wt); err != nil {
		return nil, err
	}
	for i := range f.threads {
		if _, dup := r.threads[f.threads[i].tid]; dup {
			return nil, f.ferr(0, "thread %d has two blocks", f.threads[i].tid)
		}
		r.threads[f.threads[i].tid] = &readerThread{}
	}
	return r, nil
}

// Close releases the file mapping. Entries and traces already
// materialized remain valid.
func (r *Reader) Close() error {
	if r.close != nil {
		c := r.close
		r.close = nil
		return c()
	}
	return nil
}

// Name returns the trace name recorded in the footer.
func (r *Reader) Name() string { return r.f.name }

// Len returns the total number of entries in the file.
func (r *Reader) Len() int { return r.f.total }

// ThreadIDs returns the thread ids present in the file, in block order
// (the order threads first appeared in the original trace).
func (r *Reader) ThreadIDs() []ThreadID {
	out := make([]ThreadID, len(r.f.threads))
	for i := range r.f.threads {
		out[i] = r.f.threads[i].tid
	}
	return out
}

// ThreadLen returns the entry count of one thread without decoding it
// (the count lives in the footer index), and false for an unknown tid.
func (r *Reader) ThreadLen(tid ThreadID) (int, bool) {
	for i := range r.f.threads {
		if r.f.threads[i].tid == tid {
			return r.f.threads[i].count, true
		}
	}
	return 0, false
}

// Thread materializes (on first touch) and returns one thread's entries
// in execution order, with their original entry ids. The slice is cached
// and shared: callers must treat it as read-only.
func (r *Reader) Thread(tid ThreadID) ([]Entry, error) {
	st, ok := r.threads[tid]
	if !ok {
		return nil, fmt.Errorf("trace: rseg %s: no thread %d", r.f.name, tid)
	}
	st.once.Do(func() {
		var info *rsegThreadInfo
		for i := range r.f.threads {
			if r.f.threads[i].tid == tid {
				info = &r.f.threads[i]
				break
			}
		}
		st.entries, st.err = r.f.decodeThread(*info, &r.wt)
		if st.err == nil {
			r.mu.Lock()
			r.matCnt++
			r.matEnt += len(st.entries)
			r.mu.Unlock()
		}
	})
	return st.entries, st.err
}

// Select materializes only the named threads and assembles them into a
// standalone trace: entries merged in original execution order, then
// renumbered to the dense 0..n-1 entry ids the analysis pipeline
// requires. Untouched threads stay cold — this is the lazy-diff entry
// point: diffing one thread pair out of a many-thread trace decodes
// exactly those two thread columns.
//
// Renumbering means a selected sub-trace has its own content digest; it
// is an analysis scope, not a storage form.
func (r *Reader) Select(tids ...ThreadID) (*Trace, error) {
	total := 0
	for _, tid := range tids {
		n, ok := r.ThreadLen(tid)
		if !ok {
			return nil, fmt.Errorf("trace: rseg %s: no thread %d", r.f.name, tid)
		}
		total += n
	}
	merged := make([]Entry, 0, total)
	for _, tid := range tids {
		es, err := r.Thread(tid)
		if err != nil {
			return nil, err
		}
		merged = append(merged, es...)
	}
	// Entries are value copies at this point (append copied them), so
	// renumbering cannot disturb the reader's per-thread caches.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].EID < merged[j].EID })
	for i := range merged {
		merged[i].EID = EntryID(i)
	}
	return &Trace{Name: r.f.name, Entries: merged}, nil
}

// Trace materializes the whole file into an eagerly decoded trace,
// preserving original entry ids, and caches the result. For a segment
// written mid-sequence the ids start at the segment's base, exactly as
// the gob segments did.
func (r *Reader) Trace() (*Trace, error) {
	r.mu.Lock()
	if r.full != nil {
		t := r.full
		r.mu.Unlock()
		return t, nil
	}
	r.mu.Unlock()

	if r.f.total == 0 {
		t := New(r.f.name)
		r.mu.Lock()
		r.full = t
		r.mu.Unlock()
		return t, nil
	}

	// Materialize every thread, then scatter by entry id. Entry ids in a
	// well-formed file are contiguous from the minimum (a trace starts
	// at 0; a mid-sequence segment at its base), which the fill verifies.
	// The full slice is sized only after every block has decoded: the
	// footer's entry total is attacker-controlled in a corrupt file,
	// while decoded entries are vouched for byte by byte.
	minEID := EntryID(0)
	for i := range r.f.threads {
		if i == 0 || r.f.threads[i].firstEID < minEID {
			minEID = r.f.threads[i].firstEID
		}
	}
	perThread := make([][]Entry, 0, len(r.f.threads))
	decoded := 0
	for _, tid := range r.ThreadIDs() {
		es, err := r.Thread(tid)
		if err != nil {
			return nil, err
		}
		perThread = append(perThread, es)
		decoded += len(es)
	}
	if decoded != r.f.total {
		return nil, r.f.ferr(0, "threads decode to %d entries, footer total is %d", decoded, r.f.total)
	}
	entries := make([]Entry, decoded)
	for _, es := range perThread {
		for i := range es {
			pos := int(es[i].EID - minEID)
			if pos < 0 || pos >= len(entries) {
				return nil, r.f.ferr(0, "entry id %d outside the contiguous range [%d, %d)",
					es[i].EID, minEID, minEID+EntryID(len(entries)))
			}
			entries[pos] = es[i]
		}
	}
	for i := range entries {
		if entries[i].EID != minEID+EntryID(i) {
			return nil, r.f.ferr(0, "entry ids not contiguous: position %d holds id %d (want %d)",
				i, entries[i].EID, minEID+EntryID(i))
		}
	}
	t := &Trace{Name: r.f.name, Entries: entries}
	r.mu.Lock()
	r.full = t
	r.mu.Unlock()
	return t, nil
}

// Stats snapshots how much of the file has been decoded.
func (r *Reader) Stats() ReaderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReaderStats{
		Threads:             len(r.f.threads),
		ThreadsMaterialized: r.matCnt,
		Entries:             r.f.total,
		EntriesMaterialized: r.matEnt,
		MappedBytes:         int64(len(r.f.data)),
		Symbols:             len(r.wt.syms) - 1,
	}
}
