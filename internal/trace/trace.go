// Package trace defines the execution-trace grammar of the paper
// "Semantics-Aware Trace Analysis" (PLDI 2009), Figures 4 and 8: trace
// entries, the seven event kinds, call-stack frames recorded at thread
// forks, and the extended object representation ⟨l, r⟩ used for
// differencing across program versions.
//
// Everything downstream — views, differencing, regression analysis —
// consumes only this grammar, so any producer that emits it (our mini-Java
// interpreter, a synthetic generator, a test) exercises the same analysis
// code paths the original AspectJ-woven JVM traces did.
package trace

import "fmt"

// EntryID is the index of an entry within its trace (eid in the paper).
type EntryID int

// ThreadID identifies an executing thread (tid in the paper).
type ThreadID int

// Loc is a heap location l. Value objects (primitives) have NoLoc.
type Loc int64

// NoLoc marks representations of primitive values, which have no heap
// location (E′#(D(d)) = ⟨·, D:[d]⟩ in Fig. 8).
const NoLoc Loc = 0

// EventKind enumerates the event grammar of Fig. 4.
type EventKind uint8

const (
	// KindEOF is the special entry appended to pad traces to equal length
	// before differencing (§3.1).
	KindEOF EventKind = iota
	// KindGet is a field read: get(ρ, f, ρ′).
	KindGet
	// KindSet is a field write: set(ρ, f, ρ′).
	KindSet
	// KindCall is a method invocation: call(ρ, m, ρ̄).
	KindCall
	// KindReturn is a method return: return(ρ, m, ρ′).
	KindReturn
	// KindInit is an object creation: init(A, ρ̄, ρ).
	KindInit
	// KindFork is a thread creation: fork(S̄), recording spawn ancestry.
	KindFork
	// KindEnd is a thread completion: end(S̄).
	KindEnd
)

var kindNames = [...]string{"eof", "get", "set", "call", "return", "init", "fork", "end"}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Repr is the extended object representation ⟨l, r⟩ of Fig. 8. Loc is the
// heap location (unstable across versions, so never compared), Class the
// dynamic type name, and Hash/Str a recursively computed value
// representation. Seq is the per-class object creation sequence number,
// derivable from trace data, used by object view correlation (§3.1).
//
// A Repr with Hash == 0 and Str == "" is an *empty* value representation:
// the paper forces this when an object has no meaningful version-stable
// value (default Object.hashCode/toString); correlation then falls back to
// creation sequence numbers.
type Repr struct {
	Loc   Loc
	Class string
	Hash  uint64
	Str   string
	Seq   int
	// ClassSym and StrSym are the interned forms of Class and Str,
	// assigned by Trace.Append (or EnsureSyms for hand-built entries).
	// Hot paths compare these single words; the strings remain populated
	// for rendering and as the canonical identity.
	ClassSym Sym `json:"-"`
	StrSym   Sym `json:"-"`
}

// IsZero reports whether r is the zero representation (no object at all,
// e.g. the missing value of a void return).
func (r Repr) IsZero() bool {
	return r.Loc == NoLoc && r.Class == "" && r.Hash == 0 && r.Str == "" && r.Seq == 0
}

// HasValue reports whether r carries a meaningful (non-empty) value
// representation usable for cross-version comparison.
func (r Repr) HasValue() bool { return r.Hash != 0 || r.Str != "" }

// ValueEqual compares the version-stable parts of two representations:
// class name and recursive value representation. Locations and sequence
// numbers are deliberately ignored (§3.1: "locations by themselves are
// unsuitable for comparison across different program versions"). When
// both sides carry interned symbols the comparison is three word
// compares; otherwise it falls back to the strings.
func (r Repr) ValueEqual(o Repr) bool {
	if r.Hash != o.Hash {
		return false
	}
	return symEqual(r.ClassSym, o.ClassSym, r.Class, o.Class) &&
		symEqual(r.StrSym, o.StrSym, r.Str, o.Str)
}

// symEqual compares two symbol-bearing fields: by Sym when both are
// interned, by string otherwise. Correct in the mixed case because a
// non-interned side simply falls back to the canonical string identity.
func symEqual(sa, sb Sym, a, b string) bool {
	if sa != NoSym && sb != NoSym {
		return sa == sb
	}
	return a == b
}

func (r Repr) String() string {
	switch {
	case r.IsZero():
		return "·"
	case r.Loc == NoLoc:
		return fmt.Sprintf("%s(%s)", r.Class, r.Str)
	case r.HasValue():
		return fmt.Sprintf("%s#%d{%s}", r.Class, r.Seq, r.Str)
	default:
		return fmt.Sprintf("%s#%d", r.Class, r.Seq)
	}
}

// Frame is one stack entry s(m, ρ, ρ′): method m invoked on callee ρ′ from
// caller ρ. Fork and end events record the full spawn ancestry as a frame
// sequence so that thread correlation can score spawn-context similarity.
type Frame struct {
	Method string
	Caller Repr
	Callee Repr
	// MethodSym is the interned form of Method.
	MethodSym Sym `json:"-"`
}

func (f Frame) String() string {
	return fmt.Sprintf("s(%s,%s,%s)", f.Method, f.Caller, f.Callee)
}

// Event is one trace event e of Fig. 4. Field use by kind:
//
//	get:    Target=ρ object read, Member=field, Args[0]=value read
//	set:    Target=ρ object written, Member=field, Args[0]=value written
//	call:   Target=ρ′ callee, Member=method, Args=arguments
//	return: Target=ρ′ object returned from, Member=method, Args[0]=return value (absent for void)
//	init:   Target=ρ′ created object, Member=class name A, Args=constructor arguments
//	fork:   Member=child thread id (decimal), Stack=spawn ancestry
//	end:    Stack=stack at completion
//	eof:    all fields empty
type Event struct {
	Kind   EventKind
	Target Repr
	Member string
	Args   []Repr
	Stack  []Frame
	// MemberSym is the interned form of Member.
	MemberSym Sym `json:"-"`
}

// Entry is one trace entry: entry(eid, tid, m, ρ, e). Method and Self form
// the generic context — the method under execution and the object it
// executes on — while Event captures the specific action.
type Entry struct {
	EID    EntryID
	TID    ThreadID
	Method string
	Self   Repr
	Event  Event
	// MethodSym is the interned form of Method.
	MethodSym Sym `json:"-"`
}

// IsEOF reports whether the entry is trace padding.
func (e Entry) IsEOF() bool { return e.Event.Kind == KindEOF }

func (e Entry) String() string {
	ev := e.Event
	ctx := fmt.Sprintf("[%d t%d %s %s]", e.EID, e.TID, e.Method, e.Self)
	switch ev.Kind {
	case KindEOF:
		return ctx + " eof"
	case KindGet:
		return fmt.Sprintf("%s get(%s.%s)=%s", ctx, ev.Target, ev.Member, arg0(ev.Args))
	case KindSet:
		return fmt.Sprintf("%s set(%s.%s)=%s", ctx, ev.Target, ev.Member, arg0(ev.Args))
	case KindCall:
		return fmt.Sprintf("%s call %s.%s%v", ctx, ev.Target, ev.Member, ev.Args)
	case KindReturn:
		return fmt.Sprintf("%s return %s.%s=%s", ctx, ev.Target, ev.Member, arg0(ev.Args))
	case KindInit:
		return fmt.Sprintf("%s init %s%v -> %s", ctx, ev.Member, ev.Args, ev.Target)
	case KindFork:
		return fmt.Sprintf("%s fork t%s depth=%d", ctx, ev.Member, len(ev.Stack))
	case KindEnd:
		return fmt.Sprintf("%s end depth=%d", ctx, len(ev.Stack))
	}
	return ctx + " ?"
}

func arg0(args []Repr) Repr {
	if len(args) == 0 {
		return Repr{}
	}
	return args[0]
}

// Trace is a named sequence of entries γ = η1.….ηn.
type Trace struct {
	Name    string
	Entries []Entry
}

// New returns an empty trace with the given name.
func New(name string) *Trace { return &Trace{Name: name} }

// Len returns |γ|.
func (t *Trace) Len() int { return len(t.Entries) }

// Append adds an entry, assigning its EID as the next index, and returns
// that EID. All symbol-bearing fields are interned here, once, so the
// entry enters the pipeline fully keyed by integer Syms.
func (t *Trace) Append(tid ThreadID, method string, self Repr, ev Event) EntryID {
	id := EntryID(len(t.Entries))
	e := Entry{EID: id, TID: tid, Method: method, Self: self, Event: ev}
	internEntry(&e, false)
	t.Entries = append(t.Entries, e)
	return id
}

// EnsureSyms backfills the Sym fields of every entry whose symbols are
// still zero — the path for traces built by hand or read by loaders that
// do not carry a symbol block. Entries already interned are left alone,
// so repeated calls after the first are a cheap scan.
func (t *Trace) EnsureSyms() {
	for i := range t.Entries {
		internEntry(&t.Entries[i], false)
	}
}

// RehashSyms re-interns every entry's symbols from their strings,
// overwriting any existing Sym values. Loaders use it when the stored Sym
// ids come from a different process (and are therefore meaningless here).
func (t *Trace) RehashSyms() {
	for i := range t.Entries {
		internEntry(&t.Entries[i], true)
	}
}

// internEntry interns the symbol-bearing fields of one entry in place.
// With force, existing Sym values are overwritten from the strings.
func internEntry(e *Entry, force bool) {
	internSym(&e.MethodSym, e.Method, force)
	internRepr(&e.Self, force)
	internSym(&e.Event.MemberSym, e.Event.Member, force)
	internRepr(&e.Event.Target, force)
	for i := range e.Event.Args {
		internRepr(&e.Event.Args[i], force)
	}
	for i := range e.Event.Stack {
		f := &e.Event.Stack[i]
		internSym(&f.MethodSym, f.Method, force)
		internRepr(&f.Caller, force)
		internRepr(&f.Callee, force)
	}
}

func internRepr(r *Repr, force bool) {
	internSym(&r.ClassSym, r.Class, force)
	internSym(&r.StrSym, r.Str, force)
}

func internSym(dst *Sym, s string, force bool) {
	if (*dst == NoSym || force) && s != "" {
		*dst = Intern(s)
	} else if force && s == "" {
		*dst = NoSym
	}
}

// At returns the entry with the given id, or false if out of range.
func (t *Trace) At(id EntryID) (Entry, bool) {
	if id < 0 || int(id) >= len(t.Entries) {
		return Entry{}, false
	}
	return t.Entries[id], true
}

// PadEOF appends one eof entry to each trace, plus as many further eof
// entries to the shorter trace as needed to equalize lengths (§3.1).
// It mutates both traces.
func PadEOF(l, r *Trace) {
	appendEOF := func(t *Trace, n int) {
		for i := 0; i < n; i++ {
			t.Entries = append(t.Entries, Entry{
				EID:   EntryID(len(t.Entries)),
				TID:   -1,
				Event: Event{Kind: KindEOF},
			})
		}
	}
	appendEOF(l, 1)
	appendEOF(r, 1)
	if d := l.Len() - r.Len(); d > 0 {
		appendEOF(r, d)
	} else if d < 0 {
		appendEOF(l, -d)
	}
}

// ThreadIDs returns the distinct thread ids appearing in the trace, in
// first-appearance order. EOF padding entries are skipped.
func (t *Trace) ThreadIDs() []ThreadID {
	seen := make(map[ThreadID]bool)
	var ids []ThreadID
	for _, e := range t.Entries {
		if e.IsEOF() || seen[e.TID] {
			continue
		}
		seen[e.TID] = true
		ids = append(ids, e.TID)
	}
	return ids
}
