package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSegmented records n entries through a SegmentWriter with the given
// per-segment limit and returns the ids it assigned.
func writeSegmented(t *testing.T, dir, name string, n, limit int) []EntryID {
	t.Helper()
	w, err := NewSegmentWriter(dir, name, limit)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]EntryID, 0, n)
	for i := 0; i < n; i++ {
		id, err := w.Append(1, fmt.Sprintf("C.m%d/0", i%7),
			Repr{Loc: Loc(i + 1), Class: "C", Seq: i + 1},
			Event{Kind: KindCall, Member: fmt.Sprintf("C.m%d/0", i%7),
				Target: Repr{Loc: Loc(i + 1), Class: "C", Seq: i + 1}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestSegmentWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n, limit = 103, 10
	ids := writeSegmented(t, dir, "run", n, limit)
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("Append assigned id %d to entry %d", id, i)
		}
	}

	segs, err := filepath.Glob(filepath.Join(dir, "run.*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if want := (n + limit - 1) / limit; len(segs) != want {
		t.Errorf("wrote %d segment files, want %d", len(segs), want)
	}

	got, err := LoadSegments(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("reassembled %d entries, want %d", got.Len(), n)
	}
	for i, e := range got.Entries {
		if int(e.EID) != i {
			t.Errorf("entry %d has eid %d: ids not globally consecutive", i, e.EID)
		}
	}
	// Content survives: spot-check a middle entry against its generator.
	e := got.Entries[42]
	if e.Method != "C.m0/0" || e.Event.Target.Seq != 43 {
		t.Errorf("entry 42 corrupted: %s", e)
	}
	// Loaded entries are re-interned into this process's table.
	if e.MethodSym == NoSym || SymStr(e.MethodSym) != e.Method {
		t.Errorf("entry 42 method symbol not re-interned: %v", e.MethodSym)
	}
}

func TestSegmentWriterUnbounded(t *testing.T) {
	dir := t.TempDir()
	writeSegmented(t, dir, "one", 25, 0) // limit 0 = single segment
	segs, _ := filepath.Glob(filepath.Join(dir, "one.*.seg"))
	if len(segs) != 1 {
		t.Fatalf("unbounded writer produced %d segments, want 1", len(segs))
	}
	got, err := LoadSegments(dir, "one")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 25 {
		t.Errorf("reassembled %d entries, want 25", got.Len())
	}
}

func TestSegmentWriterCloseIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSegmentWriter(dir, "idem", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, "M.m/0", Repr{}, Event{Kind: KindCall, Member: "M.m/0"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSegments(dir, "idem")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("double Close duplicated entries: got %d", got.Len())
	}
}

func TestLoadSegmentsMissing(t *testing.T) {
	if _, err := LoadSegments(t.TempDir(), "nope"); err == nil {
		t.Error("LoadSegments of a missing name succeeded")
	}
}

func TestLoadSegmentsDetectsGap(t *testing.T) {
	dir := t.TempDir()
	writeSegmented(t, dir, "gap", 30, 10)
	// Drop the middle segment: ids are no longer consecutive.
	if err := os.Remove(filepath.Join(dir, "gap.000001.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSegments(dir, "gap"); err == nil {
		t.Error("LoadSegments accepted a trace with a missing segment")
	}
}

// corrupt truncates or scribbles over a segment file per the mode.
func corrupt(t *testing.T, path, mode string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case "truncate-half":
		raw = raw[:len(raw)/2]
	case "truncate-1":
		raw = raw[:1]
	case "empty":
		raw = nil
	case "garbage":
		for i := range raw {
			raw[i] ^= 0x5a
		}
	default:
		t.Fatalf("unknown corruption mode %q", mode)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSegmentsResyncsTruncatedTail(t *testing.T) {
	// Crash mid-write leaves a partial trailing segment: the loader must
	// recover the readable prefix with a warning, whatever the damage.
	const n, limit = 30, 10 // 3 full segments
	for _, tc := range []struct {
		name string
		mode string
	}{
		{"half-written tail", "truncate-half"},
		{"one-byte tail", "truncate-1"},
		{"empty tail", "empty"},
		{"scribbled tail", "garbage"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeSegmented(t, dir, "run", n, limit)
			corrupt(t, filepath.Join(dir, "run.000002.seg"), tc.mode)

			got, rep, err := LoadSegmentsReport(dir, "run")
			if err != nil {
				t.Fatalf("LoadSegmentsReport failed instead of resyncing: %v", err)
			}
			if !rep.Truncated() {
				t.Fatal("report does not flag the skipped tail")
			}
			if rep.Segments != 2 || got.Len() != 20 {
				t.Errorf("recovered %d entries from %d segments, want 20 from 2", got.Len(), rep.Segments)
			}
			if rep.Warning == "" || rep.SkippedTail == "" {
				t.Errorf("report lacks warning/path: %+v", rep)
			}
			for i, e := range got.Entries {
				if int(e.EID) != i {
					t.Fatalf("recovered prefix not consecutive at %d (eid %d)", i, e.EID)
				}
			}
			// The forgiving wrapper recovers too.
			viaLoad, err := LoadSegments(dir, "run")
			if err != nil {
				t.Fatalf("LoadSegments failed instead of resyncing: %v", err)
			}
			if viaLoad.Len() != got.Len() {
				t.Errorf("LoadSegments recovered %d entries, report path %d", viaLoad.Len(), got.Len())
			}
		})
	}
}

func TestLoadSegmentsMidCorruptionStillFails(t *testing.T) {
	// Corruption anywhere but the tail would hole the entry sequence if
	// skipped; that must stay a hard error.
	dir := t.TempDir()
	writeSegmented(t, dir, "run", 30, 10)
	corrupt(t, filepath.Join(dir, "run.000001.seg"), "truncate-half")
	if _, _, err := LoadSegmentsReport(dir, "run"); err == nil {
		t.Error("LoadSegmentsReport accepted a corrupted middle segment")
	}
}

func TestLoadSegmentsAllCorruptFails(t *testing.T) {
	// Nothing recoverable: a lone unreadable segment is an error, not an
	// empty trace.
	dir := t.TempDir()
	writeSegmented(t, dir, "run", 5, 0)
	corrupt(t, filepath.Join(dir, "run.000000.seg"), "truncate-half")
	if _, _, err := LoadSegmentsReport(dir, "run"); err == nil {
		t.Error("LoadSegmentsReport returned success with zero readable segments")
	}
}
