package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSegmented records n entries through a SegmentWriter with the given
// per-segment limit and returns the ids it assigned.
func writeSegmented(t *testing.T, dir, name string, n, limit int) []EntryID {
	t.Helper()
	w, err := NewSegmentWriter(dir, name, limit)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]EntryID, 0, n)
	for i := 0; i < n; i++ {
		id, err := w.Append(1, fmt.Sprintf("C.m%d/0", i%7),
			Repr{Loc: Loc(i + 1), Class: "C", Seq: i + 1},
			Event{Kind: KindCall, Member: fmt.Sprintf("C.m%d/0", i%7),
				Target: Repr{Loc: Loc(i + 1), Class: "C", Seq: i + 1}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestSegmentWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n, limit = 103, 10
	ids := writeSegmented(t, dir, "run", n, limit)
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("Append assigned id %d to entry %d", id, i)
		}
	}

	segs, err := filepath.Glob(filepath.Join(dir, "run.*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if want := (n + limit - 1) / limit; len(segs) != want {
		t.Errorf("wrote %d segment files, want %d", len(segs), want)
	}

	got, err := LoadSegments(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("reassembled %d entries, want %d", got.Len(), n)
	}
	for i, e := range got.Entries {
		if int(e.EID) != i {
			t.Errorf("entry %d has eid %d: ids not globally consecutive", i, e.EID)
		}
	}
	// Content survives: spot-check a middle entry against its generator.
	e := got.Entries[42]
	if e.Method != "C.m0/0" || e.Event.Target.Seq != 43 {
		t.Errorf("entry 42 corrupted: %s", e)
	}
	// Loaded entries are re-interned into this process's table.
	if e.MethodSym == NoSym || SymStr(e.MethodSym) != e.Method {
		t.Errorf("entry 42 method symbol not re-interned: %v", e.MethodSym)
	}
}

func TestSegmentWriterUnbounded(t *testing.T) {
	dir := t.TempDir()
	writeSegmented(t, dir, "one", 25, 0) // limit 0 = single segment
	segs, _ := filepath.Glob(filepath.Join(dir, "one.*.seg"))
	if len(segs) != 1 {
		t.Fatalf("unbounded writer produced %d segments, want 1", len(segs))
	}
	got, err := LoadSegments(dir, "one")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 25 {
		t.Errorf("reassembled %d entries, want 25", got.Len())
	}
}

func TestSegmentWriterCloseIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSegmentWriter(dir, "idem", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, "M.m/0", Repr{}, Event{Kind: KindCall, Member: "M.m/0"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSegments(dir, "idem")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("double Close duplicated entries: got %d", got.Len())
	}
}

func TestLoadSegmentsMissing(t *testing.T) {
	if _, err := LoadSegments(t.TempDir(), "nope"); err == nil {
		t.Error("LoadSegments of a missing name succeeded")
	}
}

func TestLoadSegmentsDetectsGap(t *testing.T) {
	dir := t.TempDir()
	writeSegmented(t, dir, "gap", 30, 10)
	// Drop the middle segment: ids are no longer consecutive.
	if err := os.Remove(filepath.Join(dir, "gap.000001.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSegments(dir, "gap"); err == nil {
		t.Error("LoadSegments accepted a trace with a missing segment")
	}
}
