package trace

// Streaming wire format: the segment-frame encoding live capture uses to
// ship a growing trace between processes — the capture recorder streams
// frames to rprism-serve's POST /traces/stream, and the server decodes
// them into an append-open corpus session.
//
// A stream is a sequence of WireSegments. Each segment carries a batch of
// entries in the compact symbol-referencing form of JSONL v2 plus the
// *delta* of symbol strings first referenced in that batch; refs index
// the cumulative symbol table of the whole stream, so a session's
// decoder interns each distinct string exactly once no matter how many
// frames mention it. Entries keep their globally consecutive EIDs, which
// makes re-delivery after a dropped connection idempotent: a receiver
// simply skips entries below its high-water mark (see corpus.Session).

// WireSegment is one batch of a streamed trace: the symbol strings first
// referenced by this batch (in reference order) and the batch's entries
// in symbol-referencing wire form. It marshals to/from JSON as one
// segment-frame payload.
type WireSegment struct {
	Symbols []string    `json:"symbols,omitempty"`
	Entries []WireEntry `json:"entries,omitempty"`
}

// WireEncoder translates entry batches into wire segments, carrying the
// cumulative symbol table across calls so each string is shipped once
// per stream. The zero value is ready to use. Not safe for concurrent
// use; a capture recorder drives one encoder from its sequencer.
type WireEncoder struct {
	fs fileSyms
}

// Segment encodes a batch of entries, returning the segment frame to
// transmit. The Symbols field holds only the strings this batch
// introduced; earlier strings are referenced by their established ids.
func (enc *WireEncoder) Segment(entries []Entry) WireSegment {
	base := len(enc.fs.strs)
	seg := WireSegment{Entries: make([]WireEntry, len(entries))}
	for i := range entries {
		seg.Entries[i] = encodeWireEntry(&enc.fs, &entries[i])
	}
	if delta := enc.fs.strs[base:]; len(delta) > 0 {
		seg.Symbols = append([]string(nil), delta...)
	}
	return seg
}

// SymbolCount reports how many distinct strings the stream has shipped —
// the receiver's table must be exactly this long for refs to resolve.
func (enc *WireEncoder) SymbolCount() int { return len(enc.fs.strs) }

// WireDecoder is the receiving side: it accumulates each segment's
// symbol delta and decodes entries against the cumulative table. The
// zero value is ready to use. Not safe for concurrent use; the server
// guards each session's decoder with the session's stream lock.
type WireDecoder struct {
	wt wireTable
}

// Segment decodes one frame into fully interned entries.
func (dec *WireDecoder) Segment(seg WireSegment) ([]Entry, error) {
	dec.wt.add(seg.Symbols)
	if len(seg.Entries) == 0 {
		return nil, nil
	}
	out := make([]Entry, len(seg.Entries))
	for i := range seg.Entries {
		e, err := dec.wt.entry(&seg.Entries[i])
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// SymbolCount reports how many distinct strings the decoder has seen.
func (dec *WireDecoder) SymbolCount() int {
	if dec.wt.syms == nil {
		return 0
	}
	return len(dec.wt.syms) - 1
}
