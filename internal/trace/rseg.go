package trace

// RSEG is the binary columnar segment format: the durable on-disk form of
// a trace (or one segment of a segmented trace), designed so that loading
// is bounded by page faults rather than decoding.
//
// Layout (version 1):
//
//	header   (12 bytes)  magic "RSEG", version, flags, CRC32 of the first 8 bytes
//	blocks               one column block per thread, then one symbol block
//	footer               name, entry total, symbol-block index, per-thread block index
//	tail     (16 bytes)  footer offset (u64 LE), footer CRC32 (u32 LE), magic "GESR"
//
// Entries are grouped by thread and stored as per-column streams inside
// each thread block: entry ids as zig-zag deltas (monotone within a
// thread), event kinds as one dictionary byte per entry, every string
// field as a varint reference into the shared symbol block, and the
// nested representations (self/target/args/stacks) as compact varint
// streams. All strings in the file live in the single symbol block, so a
// reader interns each distinct string exactly once and decodes entry
// columns without allocating or copying per field.
//
// Each block is individually CRC'd (over its stored bytes, so integrity
// checks never require decompression) and indexed from the footer with
// its offset, stored length, raw length, entry count, and first entry
// id. That index is what makes the format lazily readable: a Reader
// (rsegreader.go) maps the file, verifies header/footer structurally,
// interns the symbol block, and then materializes individual thread
// blocks only when they are touched.
//
// Truncation and corruption are structural, never heuristic: a missing
// tail magic, an out-of-range footer offset, a CRC mismatch, or a column
// overrun each fail with a *FormatError carrying the byte offset of the
// damage.
//
// Optional per-block compression (DEFLATE) is a writer option; the flag
// is recorded in the header and per-block raw lengths in the footer.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	rsegMagic     = "RSEG"
	rsegTailMagic = "GESR"
	rsegVersion   = 1

	rsegHeaderSize = 12
	rsegTailSize   = 16

	rsegFlagCompressed = 1 << 0
)

// Format identifies an on-disk trace encoding. The zero value is the
// current default (RSEG); the legacy encodings remain readable and
// writable for migration.
type Format uint8

const (
	// FormatRSEG is the binary columnar segment format (default).
	FormatRSEG Format = iota
	// FormatGob is the legacy gob encoding of Encode/ReadFrom.
	FormatGob
	// FormatJSONL is the JSON-lines interchange format of WriteJSONL.
	FormatJSONL
)

var formatNames = [...]string{"rseg", "gob", "jsonl"}

func (f Format) String() string {
	if int(f) < len(formatNames) {
		return formatNames[f]
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// ParseFormat resolves a format name ("rseg", "gob", "jsonl").
func ParseFormat(s string) (Format, bool) {
	for i, n := range formatNames {
		if n == s {
			return Format(i), true
		}
	}
	return FormatRSEG, false
}

// FormatError describes a structurally invalid trace file: where the
// damage is (byte offset into the file) and what was expected there.
// Decoders return it for every malformed input — truncation, bit rot,
// bad counts — so callers (notably the CLI) can name the offending file
// and offset instead of surfacing a raw decode error or panicking.
type FormatError struct {
	Path   string // file path, "" when decoding from memory
	Format string // "rseg", "jsonl", ...
	Offset int64  // byte offset of the problem within the file
	Msg    string
}

func (e *FormatError) Error() string {
	name := e.Path
	if name == "" {
		name = "<memory>"
	}
	return fmt.Sprintf("trace: malformed %s file %s: at offset %d: %s", e.Format, name, e.Offset, e.Msg)
}

// RSEGOptions configure the RSEG writer.
type RSEGOptions struct {
	// Compress DEFLATE-compresses each block. Loads must then inflate
	// touched blocks, trading the zero-copy column scan for smaller
	// files; leave off for hot corpora, on for cold archives.
	Compress bool
}

// WriteRSEG writes the trace in the RSEG columnar format with default
// options (no compression).
func (t *Trace) WriteRSEG(w io.Writer) error {
	return t.WriteRSEGOpts(w, RSEGOptions{})
}

// rsegBlock is one encoded block on its way to disk.
type rsegBlock struct {
	tid      ThreadID
	count    int
	firstEID EntryID
	payload  []byte // stored bytes (possibly compressed)
	rawLen   int    // uncompressed length
	crc      uint32 // over payload as stored
	offset   int64  // assigned at assembly
}

// WriteRSEGOpts writes the trace in the RSEG columnar format.
func (t *Trace) WriteRSEGOpts(w io.Writer, opts RSEGOptions) error {
	fs := &fileSyms{}

	// Group entries by thread, preserving trace order (so entry ids are
	// monotone within each block), and encode each thread's columns.
	order := make([]ThreadID, 0, 8)
	cols := make(map[ThreadID]*rsegThreadCols)
	for i := range t.Entries {
		e := &t.Entries[i]
		tc, ok := cols[e.TID]
		if !ok {
			tc = newRSEGThreadCols()
			cols[e.TID] = tc
			order = append(order, e.TID)
		}
		tc.add(fs, e)
	}

	flags := uint8(0)
	if opts.Compress {
		flags |= rsegFlagCompressed
	}

	blocks := make([]*rsegBlock, 0, len(order)+1)
	for _, tid := range order {
		tc := cols[tid]
		payload := tc.assemble()
		b := &rsegBlock{tid: tid, count: tc.count, firstEID: tc.firstEID, rawLen: len(payload)}
		var err error
		if b.payload, err = rsegStore(payload, opts.Compress); err != nil {
			return fmt.Errorf("trace: rseg encode %q: %w", t.Name, err)
		}
		b.crc = crc32.ChecksumIEEE(b.payload)
		blocks = append(blocks, b)
	}

	// Symbol block: every distinct string referenced by any column, in
	// reference order (refs are 1-based; 0 is the empty string).
	var symBuf rsegColBuf
	symBuf.uvarint(uint64(len(fs.strs)))
	for _, s := range fs.strs {
		symBuf.str(s)
	}
	sym := &rsegBlock{rawLen: len(symBuf.b)}
	var err error
	if sym.payload, err = rsegStore(symBuf.b, opts.Compress); err != nil {
		return fmt.Errorf("trace: rseg encode %q: %w", t.Name, err)
	}
	sym.crc = crc32.ChecksumIEEE(sym.payload)

	// Assign offsets: header, thread blocks, symbol block, footer, tail.
	off := int64(rsegHeaderSize)
	for _, b := range blocks {
		b.offset = off
		off += int64(len(b.payload))
	}
	sym.offset = off
	off += int64(len(sym.payload))
	footerOff := off

	var footer rsegColBuf
	footer.str(t.Name)
	footer.uvarint(uint64(len(t.Entries)))
	footer.uvarint(uint64(sym.offset))
	footer.uvarint(uint64(len(sym.payload)))
	footer.uvarint(uint64(sym.rawLen))
	footer.uvarint(uint64(sym.crc))
	footer.uvarint(uint64(len(blocks)))
	for _, b := range blocks {
		footer.varint(int64(b.tid))
		footer.uvarint(uint64(b.offset))
		footer.uvarint(uint64(len(b.payload)))
		footer.uvarint(uint64(b.rawLen))
		footer.uvarint(uint64(b.crc))
		footer.uvarint(uint64(b.count))
		footer.varint(int64(b.firstEID))
	}

	// Header: magic, version, flags, 2 reserved bytes, CRC of the 8.
	var hdr [rsegHeaderSize]byte
	copy(hdr[:4], rsegMagic)
	hdr[4] = rsegVersion
	hdr[5] = flags
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(hdr[:8]))

	var tail [rsegTailSize]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint32(tail[8:12], crc32.ChecksumIEEE(footer.b))
	copy(tail[12:16], rsegTailMagic)

	write := func(p []byte) error {
		_, err := w.Write(p)
		return err
	}
	if err := write(hdr[:]); err != nil {
		return fmt.Errorf("trace: rseg write %q: %w", t.Name, err)
	}
	for _, b := range blocks {
		if err := write(b.payload); err != nil {
			return fmt.Errorf("trace: rseg write %q: %w", t.Name, err)
		}
	}
	for _, p := range [][]byte{sym.payload, footer.b, tail[:]} {
		if err := write(p); err != nil {
			return fmt.Errorf("trace: rseg write %q: %w", t.Name, err)
		}
	}
	return nil
}

// rsegStore returns the stored form of a block payload: the raw bytes,
// or their DEFLATE stream when compressing.
func rsegStore(raw []byte, compress bool) ([]byte, error) {
	if !compress {
		return raw, nil
	}
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// rsegColBuf is an append-only varint byte buffer — the writer-side
// column primitive.
type rsegColBuf struct {
	b   []byte
	tmp [binary.MaxVarintLen64]byte
}

func (c *rsegColBuf) uvarint(v uint64) {
	n := binary.PutUvarint(c.tmp[:], v)
	c.b = append(c.b, c.tmp[:n]...)
}

func (c *rsegColBuf) varint(v int64) {
	n := binary.PutVarint(c.tmp[:], v)
	c.b = append(c.b, c.tmp[:n]...)
}

func (c *rsegColBuf) byte(v byte) { c.b = append(c.b, v) }

func (c *rsegColBuf) str(s string) {
	c.uvarint(uint64(len(s)))
	c.b = append(c.b, s...)
}

// repr appends one representation: location, class ref, hash, string
// ref, sequence number.
func (c *rsegColBuf) repr(fs *fileSyms, r *Repr) {
	c.varint(int64(r.Loc))
	c.uvarint(uint64(fs.id(r.Class)))
	c.uvarint(r.Hash)
	c.uvarint(uint64(fs.id(r.Str)))
	c.varint(int64(r.Seq))
}

// rsegThreadCols accumulates one thread's column streams.
type rsegThreadCols struct {
	count    int
	firstEID EntryID
	lastEID  EntryID
	eids     rsegColBuf // zig-zag delta-coded entry ids
	kinds    rsegColBuf // one dictionary byte per entry
	methods  rsegColBuf // symbol refs for Entry.Method
	members  rsegColBuf // symbol refs for Event.Member
	selfs    rsegColBuf // Repr stream for Entry.Self
	targets  rsegColBuf // Repr stream for Event.Target
	args     rsegColBuf // count + Repr stream per entry
	stacks   rsegColBuf // count + Frame stream per entry
}

func newRSEGThreadCols() *rsegThreadCols { return &rsegThreadCols{} }

func (tc *rsegThreadCols) add(fs *fileSyms, e *Entry) {
	if tc.count == 0 {
		tc.firstEID = e.EID
		tc.eids.varint(int64(e.EID))
	} else {
		tc.eids.varint(int64(e.EID - tc.lastEID))
	}
	tc.lastEID = e.EID
	tc.count++

	tc.kinds.byte(byte(e.Event.Kind))
	tc.methods.uvarint(uint64(fs.id(e.Method)))
	tc.members.uvarint(uint64(fs.id(e.Event.Member)))
	tc.selfs.repr(fs, &e.Self)
	tc.targets.repr(fs, &e.Event.Target)

	tc.args.uvarint(uint64(len(e.Event.Args)))
	for i := range e.Event.Args {
		tc.args.repr(fs, &e.Event.Args[i])
	}
	tc.stacks.uvarint(uint64(len(e.Event.Stack)))
	for i := range e.Event.Stack {
		f := &e.Event.Stack[i]
		tc.stacks.uvarint(uint64(fs.id(f.Method)))
		tc.stacks.repr(fs, &f.Caller)
		tc.stacks.repr(fs, &f.Callee)
	}
}

// rsegColumnCount is the number of per-thread column streams.
const rsegColumnCount = 8

// assemble concatenates the thread's columns into one block payload:
// entry count, then each column as a length-prefixed byte stream.
func (tc *rsegThreadCols) assemble() []byte {
	var out rsegColBuf
	out.uvarint(uint64(tc.count))
	for _, col := range []*rsegColBuf{
		&tc.eids, &tc.kinds, &tc.methods, &tc.members,
		&tc.selfs, &tc.targets, &tc.args, &tc.stacks,
	} {
		out.uvarint(uint64(len(col.b)))
		out.b = append(out.b, col.b...)
	}
	return out.b
}

// ---- decoding ----

// rsegThreadInfo is one thread block's footer index entry.
type rsegThreadInfo struct {
	tid       ThreadID
	offset    int64
	storedLen int64
	rawLen    int64
	crc       uint32
	count     int
	firstEID  EntryID
}

// rsegFile is a structurally validated RSEG image: header and footer
// parsed and CRC-checked, block index in hand, no entry column decoded
// yet. It holds the raw bytes (typically an mmap) and decodes lazily.
type rsegFile struct {
	data    []byte
	path    string
	name    string
	total   int
	flags   uint8
	sym     rsegThreadInfo // tid/count/firstEID unused for the symbol block
	threads []rsegThreadInfo
}

// ferr builds a FormatError at an absolute file offset.
func (f *rsegFile) ferr(off int64, format string, a ...any) *FormatError {
	return &FormatError{Path: f.path, Format: "rseg", Offset: off, Msg: fmt.Sprintf(format, a...)}
}

// parseRSEG validates the structural shell of an RSEG image: header,
// tail, footer (CRC'd), and the block index, with every offset/length
// checked against the file bounds. Column payloads are not touched.
func parseRSEG(data []byte, path string) (*rsegFile, error) {
	f := &rsegFile{data: data, path: path}
	if len(data) < rsegHeaderSize+rsegTailSize {
		return nil, f.ferr(int64(len(data)), "file truncated: %d bytes, need at least %d",
			len(data), rsegHeaderSize+rsegTailSize)
	}
	if string(data[:4]) != rsegMagic {
		return nil, f.ferr(0, "bad magic %q (want %q)", data[:4], rsegMagic)
	}
	if data[4] != rsegVersion {
		return nil, f.ferr(4, "unsupported version %d (this reader handles %d)", data[4], rsegVersion)
	}
	f.flags = data[5]
	if got, want := binary.LittleEndian.Uint32(data[8:12]), crc32.ChecksumIEEE(data[:8]); got != want {
		return nil, f.ferr(8, "header checksum mismatch (stored %08x, computed %08x)", got, want)
	}

	tailOff := int64(len(data) - rsegTailSize)
	tail := data[tailOff:]
	if string(tail[12:16]) != rsegTailMagic {
		return nil, f.ferr(tailOff+12, "missing tail magic: file truncated mid-write")
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[0:8]))
	if footerOff < rsegHeaderSize || footerOff > tailOff {
		return nil, f.ferr(tailOff, "footer offset %d out of range [%d, %d]", footerOff, rsegHeaderSize, tailOff)
	}
	footer := data[footerOff:tailOff]
	if got, want := binary.LittleEndian.Uint32(tail[8:12]), crc32.ChecksumIEEE(footer); got != want {
		return nil, f.ferr(footerOff, "footer checksum mismatch (stored %08x, computed %08x)", got, want)
	}

	r := &rsegCursor{data: footer, base: footerOff, file: f}
	name, err := r.str("trace name")
	if err != nil {
		return nil, err
	}
	f.name = name
	total, err := r.count("entry total", 1<<40)
	if err != nil {
		return nil, err
	}
	f.total = int(total)
	if f.sym, err = r.blockInfo("symbol block", footerOff); err != nil {
		return nil, err
	}
	// Each thread index record takes at least 7 bytes, so the footer's own
	// length caps how many threads a well-formed file can declare — the
	// guard that keeps a corrupted count from provoking a giant allocation.
	nThreads, err := r.count("thread count", uint64(len(footer)))
	if err != nil {
		return nil, err
	}
	f.threads = make([]rsegThreadInfo, 0, nThreads)
	sum := 0
	for i := 0; i < int(nThreads); i++ {
		tid, err := r.varint("thread id")
		if err != nil {
			return nil, err
		}
		ti, err := r.blockInfo("thread block", footerOff)
		if err != nil {
			return nil, err
		}
		ti.tid = ThreadID(tid)
		// An entry occupies at least one byte in the kind column alone,
		// so a block can hold at most rawLen entries.
		cnt, err := r.count("thread entry count", uint64(ti.rawLen))
		if err != nil {
			return nil, err
		}
		ti.count = int(cnt)
		first, err := r.varint("thread first entry id")
		if err != nil {
			return nil, err
		}
		ti.firstEID = EntryID(first)
		sum += ti.count
		f.threads = append(f.threads, ti)
	}
	if sum != f.total {
		return nil, f.ferr(footerOff, "thread entry counts sum to %d, footer total is %d", sum, f.total)
	}
	if r.pos != len(footer) {
		return nil, f.ferr(footerOff+int64(r.pos), "%d trailing bytes after footer index", len(footer)-r.pos)
	}
	return f, nil
}

// block fetches, CRC-checks, and (if needed) inflates one block's
// payload bytes.
func (f *rsegFile) block(ti rsegThreadInfo, what string) ([]byte, error) {
	stored := f.data[ti.offset : ti.offset+ti.storedLen]
	if got := crc32.ChecksumIEEE(stored); got != ti.crc {
		return nil, f.ferr(ti.offset, "%s checksum mismatch (stored %08x, computed %08x)", what, ti.crc, got)
	}
	if f.flags&rsegFlagCompressed == 0 {
		if ti.rawLen != ti.storedLen {
			return nil, f.ferr(ti.offset, "%s raw length %d disagrees with stored length %d in an uncompressed file",
				what, ti.rawLen, ti.storedLen)
		}
		return stored, nil
	}
	raw := make([]byte, 0, ti.rawLen)
	zr := flate.NewReader(bytes.NewReader(stored))
	buf := bytes.NewBuffer(raw)
	if _, err := io.Copy(buf, io.LimitReader(zr, ti.rawLen+1)); err != nil {
		return nil, f.ferr(ti.offset, "%s inflate: %v", what, err)
	}
	if int64(buf.Len()) != ti.rawLen {
		return nil, f.ferr(ti.offset, "%s inflated to %d bytes, footer says %d", what, buf.Len(), ti.rawLen)
	}
	return buf.Bytes(), nil
}

// symbolsInto decodes the symbol block straight into a wire table,
// interning each string from the raw bytes — a symbol the process has
// already seen (any earlier load of a related trace) resolves without
// allocating a string at all.
func (f *rsegFile) symbolsInto(wt *wireTable) error {
	raw, err := f.block(f.sym, "symbol block")
	if err != nil {
		return err
	}
	r := &rsegCursor{data: raw, base: f.sym.offset, file: f}
	n, err := r.count("symbol count", uint64(len(raw)))
	if err != nil {
		return err
	}
	bs := make([][]byte, 0, n)
	for i := 0; i < int(n); i++ {
		ln, err := r.count("symbol length", uint64(len(raw)-r.pos))
		if err != nil {
			return err
		}
		b, off, err := r.bytes(int(ln), "symbol")
		if err != nil {
			return err
		}
		if len(b) == 0 {
			return f.ferr(off, "empty string in symbol block (ref %d)", i+1)
		}
		bs = append(bs, b)
	}
	wt.addBytes(bs)
	if r.pos != len(raw) {
		return f.ferr(f.sym.offset+int64(r.pos), "%d trailing bytes after symbol block", len(raw)-r.pos)
	}
	return nil
}

// decodeThread decodes one thread block into fully interned entries,
// resolving symbol refs against wt (the file's interned symbol table).
func (f *rsegFile) decodeThread(ti rsegThreadInfo, wt *wireTable) ([]Entry, error) {
	raw, err := f.block(ti, "thread block")
	if err != nil {
		return nil, err
	}
	r := &rsegCursor{data: raw, base: ti.offset, file: f}
	cnt, err := r.count("block entry count", uint64(f.total))
	if err != nil {
		return nil, err
	}
	if int(cnt) != ti.count {
		return nil, f.ferr(ti.offset, "block holds %d entries, footer index says %d", cnt, ti.count)
	}
	cols := make([]*rsegCursor, rsegColumnCount)
	for i := range cols {
		n, err := r.count("column length", uint64(len(raw)))
		if err != nil {
			return nil, err
		}
		b, off, err := r.bytes(int(n), "column")
		if err != nil {
			return nil, err
		}
		cols[i] = &rsegCursor{data: b, base: off, file: f}
	}
	if r.pos != len(raw) {
		return nil, f.ferr(ti.offset+int64(r.pos), "%d trailing bytes after columns", len(raw)-r.pos)
	}
	eids, kinds, methods, members, selfs, targets, args, stacks :=
		cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6], cols[7]

	// Start from a bounded capacity: a corrupted count field must not
	// size a giant allocation before per-entry decoding (which consumes
	// real column bytes, failing fast on overrun) has vouched for it.
	cap0 := ti.count
	if cap0 > 1<<14 {
		cap0 = 1 << 14
	}
	entries := make([]Entry, 0, cap0)

	// Args and Stack slices are carved from shared slabs instead of one
	// allocation per entry. Decoded entries are read-only by contract
	// (Reader.Thread shares its cache slice), so neighboring entries
	// sharing a backing array is safe, and the decode drops from O(n)
	// small allocations to O(n/slab).
	var reprSlab []Repr
	allocReprs := func(n int) []Repr {
		if n > len(reprSlab) {
			size := 1024
			if n > size {
				size = n
			}
			reprSlab = make([]Repr, size)
		}
		out := reprSlab[:n:n]
		reprSlab = reprSlab[n:]
		return out
	}
	var frameSlab []Frame
	allocFrames := func(n int) []Frame {
		if n > len(frameSlab) {
			size := 256
			if n > size {
				size = n
			}
			frameSlab = make([]Frame, size)
		}
		out := frameSlab[:n:n]
		frameSlab = frameSlab[n:]
		return out
	}

	prev := EntryID(0)
	for i := 0; i < ti.count; i++ {
		e := Entry{TID: ti.tid}

		d, err := eids.varint("entry id delta")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			e.EID = EntryID(d)
			if e.EID != ti.firstEID {
				return nil, f.ferr(ti.offset, "first entry id %d disagrees with footer index %d", e.EID, ti.firstEID)
			}
		} else {
			if d <= 0 {
				return nil, f.ferr(eids.at(), "non-increasing entry id (delta %d)", d)
			}
			e.EID = prev + EntryID(d)
		}
		prev = e.EID

		kb, off, err := kinds.bytes(1, "event kind")
		if err != nil {
			return nil, err
		}
		if int(kb[0]) >= len(kindNames) {
			return nil, f.ferr(off, "unknown event kind code %d", kb[0])
		}
		e.Event.Kind = EventKind(kb[0])

		if e.MethodSym, e.Method, err = methods.symref(wt, "method"); err != nil {
			return nil, err
		}
		if e.Event.MemberSym, e.Event.Member, err = members.symref(wt, "member"); err != nil {
			return nil, err
		}
		if e.Self, err = selfs.repr(wt); err != nil {
			return nil, err
		}
		if e.Event.Target, err = targets.repr(wt); err != nil {
			return nil, err
		}

		nArgs, err := args.count("arg count", uint64(len(args.data)))
		if err != nil {
			return nil, err
		}
		if nArgs > 0 {
			e.Event.Args = allocReprs(int(nArgs))
			for j := range e.Event.Args {
				if e.Event.Args[j], err = args.repr(wt); err != nil {
					return nil, err
				}
			}
		}
		nFrames, err := stacks.count("stack depth", uint64(len(stacks.data)))
		if err != nil {
			return nil, err
		}
		if nFrames > 0 {
			e.Event.Stack = allocFrames(int(nFrames))
			for j := range e.Event.Stack {
				fr := &e.Event.Stack[j]
				if fr.MethodSym, fr.Method, err = stacks.symref(wt, "frame method"); err != nil {
					return nil, err
				}
				if fr.Caller, err = stacks.repr(wt); err != nil {
					return nil, err
				}
				if fr.Callee, err = stacks.repr(wt); err != nil {
					return nil, err
				}
			}
		}
		entries = append(entries, e)
	}
	for i, c := range cols {
		if c.pos != len(c.data) {
			return nil, f.ferr(c.base+int64(c.pos), "%d trailing bytes in column %d", len(c.data)-c.pos, i)
		}
	}
	return entries, nil
}

// rsegCursor walks a byte region, reporting every malformation as a
// FormatError at the absolute file offset where it was found. For
// compressed blocks offsets are relative to the inflated stream but
// based at the block's file offset — close enough to localize damage.
type rsegCursor struct {
	data []byte
	pos  int
	base int64
	file *rsegFile
}

// at returns the cursor's current absolute offset.
func (r *rsegCursor) at() int64 { return r.base + int64(r.pos) }

func (r *rsegCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.file.ferr(r.at(), "truncated or oversized varint (%s)", what)
	}
	r.pos += n
	return v, nil
}

func (r *rsegCursor) varint(what string) (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.file.ferr(r.at(), "truncated or oversized varint (%s)", what)
	}
	r.pos += n
	return v, nil
}

// blockInfo reads one block's index record (offset, stored length, raw
// length, CRC) and bounds-checks it against the region the blocks must
// live in: [header end, limit).
func (r *rsegCursor) blockInfo(what string, limit int64) (rsegThreadInfo, error) {
	var ti rsegThreadInfo
	at := r.at()
	off, err := r.uvarint(what + " offset")
	if err != nil {
		return ti, err
	}
	stored, err := r.uvarint(what + " stored length")
	if err != nil {
		return ti, err
	}
	raw, err := r.uvarint(what + " raw length")
	if err != nil {
		return ti, err
	}
	crc, err := r.uvarint(what + " checksum")
	if err != nil {
		return ti, err
	}
	ti.offset, ti.storedLen, ti.rawLen, ti.crc = int64(off), int64(stored), int64(raw), uint32(crc)
	if crc > uint64(^uint32(0)) {
		return ti, r.file.ferr(at, "%s checksum %d exceeds 32 bits", what, crc)
	}
	if ti.offset < rsegHeaderSize || ti.storedLen < 0 || ti.offset+ti.storedLen > limit {
		return ti, r.file.ferr(at, "%s [%d, %d) outside the block region [%d, %d)",
			what, ti.offset, ti.offset+ti.storedLen, int64(rsegHeaderSize), limit)
	}
	// DEFLATE expands at most ~1032x; a raw length beyond that is a
	// corrupted field, rejected before it can size any buffer.
	if maxRaw := ti.storedLen*1032 + 64; ti.rawLen > maxRaw {
		return ti, r.file.ferr(at, "%s raw length %d implausible for %d stored bytes", what, ti.rawLen, ti.storedLen)
	}
	return ti, nil
}

// count reads a uvarint bounded by max — the guard that keeps a
// corrupted length field from provoking a giant allocation.
func (r *rsegCursor) count(what string, max uint64) (uint64, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, r.file.ferr(r.at(), "implausible %s %d (limit %d)", what, v, max)
	}
	return v, nil
}

// bytes consumes n raw bytes, returning them and their absolute offset.
func (r *rsegCursor) bytes(n int, what string) ([]byte, int64, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, 0, r.file.ferr(r.at(), "%s overruns its region (%d bytes wanted, %d left)",
			what, n, len(r.data)-r.pos)
	}
	off := r.at()
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, off, nil
}

func (r *rsegCursor) str(what string) (string, error) {
	n, err := r.count(what+" length", uint64(len(r.data)-r.pos))
	if err != nil {
		return "", err
	}
	b, _, err := r.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	// string(b) copies: decoded strings never alias the (possibly
	// memory-mapped) file image.
	return string(b), nil
}

// symref reads a symbol reference and resolves it against the file
// symbol table. what must already read as a full label ("method symbol
// ref") — building it here would put a string concatenation on the
// per-field hot path.
func (r *rsegCursor) symref(wt *wireTable, what string) (Sym, string, error) {
	off := r.at()
	ref, err := r.uvarint(what)
	if err != nil {
		return NoSym, "", err
	}
	sym, s, rerr := wt.resolve(uint32(ref))
	if rerr != nil || ref > uint64(^uint32(0)) {
		return NoSym, "", r.file.ferr(off, "%s symbol ref %d out of range (%d symbols)", what, ref, len(wt.syms)-1)
	}
	return sym, s, nil
}

// repr reads one representation from a column stream.
func (r *rsegCursor) repr(wt *wireTable) (Repr, error) {
	loc, err := r.varint("repr location")
	if err != nil {
		return Repr{}, err
	}
	clsSym, cls, err := r.symref(wt, "repr class")
	if err != nil {
		return Repr{}, err
	}
	hash, err := r.uvarint("repr hash")
	if err != nil {
		return Repr{}, err
	}
	strSym, str, err := r.symref(wt, "repr value")
	if err != nil {
		return Repr{}, err
	}
	seq, err := r.varint("repr seq")
	if err != nil {
		return Repr{}, err
	}
	return Repr{Loc: Loc(loc), Class: cls, Hash: hash, Str: str, Seq: int(seq),
		ClassSym: clsSym, StrSym: strSym}, nil
}
