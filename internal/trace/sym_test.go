package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestSymbolTableRoundTrip(t *testing.T) {
	st := NewSymbolTable()
	words := []string{"Main.main/0", "C", "Int:[42]", "Log.add/1", "C"}
	ids := make([]Sym, len(words))
	for i, w := range words {
		ids[i] = st.Intern(w)
	}
	for i, w := range words {
		if got := st.Str(ids[i]); got != w {
			t.Errorf("Str(Intern(%q)) = %q", w, got)
		}
	}
	if ids[1] != ids[4] {
		t.Error("re-interning the same string must return the same symbol")
	}
	if ids[0] == ids[1] || ids[1] == ids[2] {
		t.Error("distinct strings must get distinct symbols")
	}
	if st.Len() != 4 {
		t.Errorf("Len = %d, want 4 distinct symbols", st.Len())
	}
	wantBytes := int64(len("Main.main/0") + len("C") + len("Int:[42]") + len("Log.add/1"))
	if st.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", st.Bytes(), wantBytes)
	}
}

func TestSymbolTableEmptyString(t *testing.T) {
	st := NewSymbolTable()
	if st.Intern("") != NoSym {
		t.Error("empty string must intern to NoSym")
	}
	if st.Str(NoSym) != "" {
		t.Error("NoSym must resolve to the empty string")
	}
	if st.Hash(NoSym) != 0 {
		t.Error("NoSym must hash to 0")
	}
	if _, ok := st.Lookup("never-interned"); ok {
		t.Error("Lookup must not intern")
	}
}

func TestSymbolTableHashesPrecomputed(t *testing.T) {
	st := NewSymbolTable()
	id := st.Intern("some.method/2")
	if st.Hash(id) == 0 {
		t.Error("interned symbol must carry a nonzero hash")
	}
	if st.Hash(id) != fnv64a("some.method/2") {
		t.Error("precomputed hash must be the FNV-1a of the string")
	}
}

// TestSymbolTableCollisionSafety: symbol identity is keyed by the string,
// not its 64-bit hash, so strings that collide in hash space must still
// receive distinct symbols that round-trip independently.
func TestSymbolTableCollisionSafety(t *testing.T) {
	st := NewSymbolTable()
	// Brute-forcing a real FNV-64 collision is impractical here; instead
	// verify the structural property the map-keyed design guarantees:
	// many strings, all distinct ids, all round-tripping — regardless of
	// their hash values (including any incidental collisions).
	seen := make(map[Sym]string)
	for i := 0; i < 10000; i++ {
		s := fmt.Sprintf("sym-%d", i)
		id := st.Intern(s)
		if prev, dup := seen[id]; dup {
			t.Fatalf("id %d issued for both %q and %q", id, prev, s)
		}
		seen[id] = s
	}
	for id, s := range seen {
		if st.Str(id) != s {
			t.Fatalf("Str(%d) = %q, want %q", id, st.Str(id), s)
		}
	}
}

func TestSymbolTableConcurrentIntern(t *testing.T) {
	st := NewSymbolTable()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]Sym, 100)
			for i := 0; i < 100; i++ {
				ids[w][i] = st.Intern(fmt.Sprintf("shared-%d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for shared-%d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
	if st.Len() != 100 {
		t.Errorf("Len = %d, want 100", st.Len())
	}
}

func TestEnsureSymsBackfillsHandBuiltEntries(t *testing.T) {
	tr := New("hand")
	// Bypass Append to simulate an external producer.
	tr.Entries = append(tr.Entries, Entry{
		EID: 0, TID: 1, Method: "C.m/0",
		Self: Repr{Loc: 1, Class: "C"},
		Event: Event{Kind: KindCall, Member: "D.n/1",
			Target: Repr{Loc: 2, Class: "D", Hash: 5, Str: "D:[]"},
			Args:   []Repr{{Class: "Int", Hash: 9, Str: "Int:[3]"}},
			Stack:  []Frame{{Method: "C.m/0", Callee: Repr{Class: "C"}}},
		},
	})
	tr.EnsureSyms()
	e := tr.Entries[0]
	if e.MethodSym == NoSym || e.Event.MemberSym == NoSym {
		t.Error("method/member symbols not backfilled")
	}
	if e.Self.ClassSym == NoSym || e.Event.Target.ClassSym == NoSym || e.Event.Target.StrSym == NoSym {
		t.Error("repr symbols not backfilled")
	}
	if e.Event.Args[0].ClassSym == NoSym || e.Event.Stack[0].MethodSym == NoSym ||
		e.Event.Stack[0].Callee.ClassSym == NoSym {
		t.Error("arg/stack symbols not backfilled")
	}
	if SymStr(e.MethodSym) != "C.m/0" {
		t.Errorf("method symbol resolves to %q", SymStr(e.MethodSym))
	}
	// Symbols must agree with Append-interned entries for equal strings.
	tr2 := New("appended")
	tr2.Append(1, "C.m/0", Repr{}, Event{Kind: KindCall, Member: "D.n/1"})
	if tr2.Entries[0].MethodSym != e.MethodSym {
		t.Error("same string interned to different symbols across traces")
	}
}

func TestAppendInternsSymbols(t *testing.T) {
	tr := New("t")
	tr.Append(0, "Main.main/0", Repr{Loc: 1, Class: "Main"}, Event{
		Kind: KindSet, Target: Repr{Loc: 1, Class: "Main"}, Member: "f",
		Args: []Repr{PrimRepr("Int", "1")},
	})
	e := tr.Entries[0]
	if e.MethodSym == NoSym || e.Event.MemberSym == NoSym ||
		e.Self.ClassSym == NoSym || e.Event.Target.ClassSym == NoSym {
		t.Errorf("Append left symbols unfilled: %+v", e)
	}
	if e.Self.ClassSym != e.Event.Target.ClassSym {
		t.Error("same class must intern to the same symbol")
	}
}
