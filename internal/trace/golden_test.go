// Package trace_test holds the cross-format compatibility suite: golden
// fixture files in every on-disk encoding the project has ever shipped
// (JSONL v1, JSONL v2, gob, RSEG plain and compressed), all encoding the
// same fixture trace, all required to load to an identical canonical
// digest and an equivalent view web. It lives in the external test
// package so it can drive the views and diff layers the internal package
// cannot import.
package trace_test

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diff"
	"repro/internal/trace"
	"repro/internal/views"
)

var update = flag.Bool("update", false, "regenerate the golden format fixtures under testdata/")

// fixtureTrace is the deterministic trace every golden file encodes: a
// three-thread run with forks, calls, field traffic, spawn-ancestry
// stacks, and value representations — one of everything the formats must
// carry.
func fixtureTrace() *trace.Trace {
	tr := trace.New("golden")
	main := trace.Repr{Loc: 1, Class: "Main", Seq: 1}
	ancestry := []trace.Frame{{Method: "Main.main/0", Callee: main}}
	tr.Append(0, "Main.main/0", main,
		trace.Event{Kind: trace.KindInit, Member: "Main", Target: main})
	tr.Append(0, "Main.main/0", main,
		trace.Event{Kind: trace.KindFork, Member: "1", Stack: ancestry})
	tr.Append(0, "Main.main/0", main,
		trace.Event{Kind: trace.KindFork, Member: "2", Stack: ancestry})
	for i := 0; i < 6; i++ {
		tid := trace.ThreadID(1 + i%2)
		worker := trace.Repr{Loc: trace.Loc(10 + tid), Class: "Worker", Seq: int(tid)}
		tr.Append(tid, fmt.Sprintf("Worker.run/%d", tid), worker,
			trace.Event{Kind: trace.KindCall, Member: fmt.Sprintf("Worker.step%d/1", i/2),
				Target: worker,
				Args:   []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i*i))}})
		tr.Append(tid, fmt.Sprintf("Worker.run/%d", tid), worker,
			trace.Event{Kind: trace.KindSet, Member: "count", Target: worker,
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i))}})
	}
	tr.Append(1, "Worker.run/1", trace.Repr{Loc: 11, Class: "Worker", Seq: 1},
		trace.Event{Kind: trace.KindEnd, Stack: ancestry})
	tr.Append(2, "Worker.run/2", trace.Repr{Loc: 12, Class: "Worker", Seq: 2},
		trace.Event{Kind: trace.KindEnd, Stack: ancestry})
	tr.Append(0, "Main.main/0", main, trace.Event{Kind: trace.KindEnd})
	return tr
}

// goldenFixtures maps each golden file to its writer. golden.v1.jsonl is
// the one encoding no current API emits (the legacy headerless JSONL of
// the original writer), so the update path reproduces it field by field.
func goldenFixtures() map[string]func(path string, tr *trace.Trace) error {
	save := func(f trace.Format) func(string, *trace.Trace) error {
		return func(path string, tr *trace.Trace) error { return tr.SaveFormat(path, f) }
	}
	return map[string]func(string, *trace.Trace) error{
		"golden.v2.jsonl": save(trace.FormatJSONL),
		"golden.gob":      save(trace.FormatGob),
		"golden.rseg":     save(trace.FormatRSEG),
		"golden.rsegz": func(path string, tr *trace.Trace) error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tr.WriteRSEGOpts(f, trace.RSEGOptions{Compress: true}); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		},
		"golden.v1.jsonl": writeLegacyV1,
	}
}

// legacy v1 line shape: self-contained entries, strings inlined, no
// header. Mirrors the original writer closely enough that the v1 reader
// exercises its real decode path.
type v1Repr struct {
	Loc   trace.Loc `json:"Loc"`
	Class string    `json:"Class"`
	Hash  uint64    `json:"Hash"`
	Str   string    `json:"Str"`
	Seq   int       `json:"Seq"`
}

type v1Frame struct {
	Method string `json:"Method"`
	Caller v1Repr `json:"Caller"`
	Callee v1Repr `json:"Callee"`
}

type v1Entry struct {
	EID    trace.EntryID  `json:"eid"`
	TID    trace.ThreadID `json:"tid"`
	Method string         `json:"method,omitempty"`
	Self   *v1Repr        `json:"self,omitempty"`
	Kind   string         `json:"kind"`
	Target *v1Repr        `json:"target,omitempty"`
	Member string         `json:"member,omitempty"`
	Args   []v1Repr       `json:"args,omitempty"`
	Stack  []v1Frame      `json:"stack,omitempty"`
}

func writeLegacyV1(path string, tr *trace.Trace) error {
	repr := func(r trace.Repr) v1Repr {
		return v1Repr{Loc: r.Loc, Class: r.Class, Hash: r.Hash, Str: r.Str, Seq: r.Seq}
	}
	reprp := func(r trace.Repr) *v1Repr {
		if r.IsZero() {
			return nil
		}
		v := repr(r)
		return &v
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, e := range tr.Entries {
		je := v1Entry{
			EID: e.EID, TID: e.TID, Method: e.Method,
			Self: reprp(e.Self), Kind: e.Event.Kind.String(),
			Target: reprp(e.Event.Target), Member: e.Event.Member,
		}
		for _, a := range e.Event.Args {
			je.Args = append(je.Args, repr(a))
		}
		for _, fr := range e.Event.Stack {
			je.Stack = append(je.Stack, v1Frame{Method: fr.Method,
				Caller: repr(fr.Caller), Callee: repr(fr.Callee)})
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TestGoldenFormatCompat is the cross-version compatibility gate (run in
// CI's format-compat job): every golden fixture, whatever its encoding
// era, must load to the pinned canonical digest and build a view web
// equivalent to the in-memory fixture's. Run with -update after an
// intentional format change to regenerate the files — the v1/v2/gob
// fixtures must never change once released, so -update failing to
// reproduce the pinned digest is itself a compatibility break.
func TestGoldenFormatCompat(t *testing.T) {
	tr := fixtureTrace()
	digestPath := filepath.Join("testdata", "golden.digest")

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, write := range goldenFixtures() {
			if err := write(filepath.Join("testdata", name), tr); err != nil {
				t.Fatalf("regenerate %s: %v", name, err)
			}
		}
		if err := os.WriteFile(digestPath, []byte(tr.ComputeDigest().String()+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(digestPath)
	if err != nil {
		t.Fatalf("read pinned digest (run with -update to generate): %v", err)
	}
	want, err := trace.ParseDigest(string(raw[:len(raw)-1]))
	if err != nil {
		t.Fatalf("pinned digest malformed: %v", err)
	}
	if got := tr.ComputeDigest(); got != want {
		t.Fatalf("fixture trace digest %s no longer matches pinned %s: the canonical encoding changed", got, want)
	}

	web := views.Build(tr)
	for name := range goldenFixtures() {
		t.Run(name, func(t *testing.T) {
			got, err := trace.Load(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			if d := got.ComputeDigest(); d != want {
				t.Errorf("loaded digest %s, want pinned %s", d, want)
			}
			if err := views.Equivalent(web, views.Build(got)); err != nil {
				t.Errorf("view web differs from fixture: %v", err)
			}
		})
	}
}

// TestRSEGRoundTripProperty pins the migration guarantee over varied
// trace shapes: writing any trace as RSEG and loading it back yields an
// identical canonical digest and an equivalent view web — the property
// `rprism convert` relies on when it replaces JSONL/gob files in place.
func TestRSEGRoundTripProperty(t *testing.T) {
	empty := trace.New("empty")
	single := trace.New("single")
	single.Append(0, "M.m/0", trace.Repr{},
		trace.Event{Kind: trace.KindCall, Member: "M.m/0"})
	for _, tr := range []*trace.Trace{fixtureTrace(), empty, single} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/compress=%v", tr.Name, compress), func(t *testing.T) {
				dir := t.TempDir()
				jsonl := filepath.Join(dir, "t.jsonl")
				if err := tr.SaveFormat(jsonl, trace.FormatJSONL); err != nil {
					t.Fatal(err)
				}
				loaded, err := trace.Load(jsonl)
				if err != nil {
					t.Fatal(err)
				}
				rseg := filepath.Join(dir, "t.rseg")
				f, err := os.Create(rseg)
				if err != nil {
					t.Fatal(err)
				}
				if err := loaded.WriteRSEGOpts(f, trace.RSEGOptions{Compress: compress}); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
				got, err := trace.Load(rseg)
				if err != nil {
					t.Fatal(err)
				}
				if d1, d2 := tr.ComputeDigest(), got.ComputeDigest(); d1 != d2 {
					t.Errorf("JSONL→RSEG→load digest %s, want %s", d2, d1)
				}
				if err := views.Equivalent(views.Build(tr), views.Build(got)); err != nil {
					t.Errorf("JSONL→RSEG→load web differs: %v", err)
				}
			})
		}
	}
}

// TestLazyPairDiffRSEG runs an actual two-trace diff over a thread pair
// selected from many-thread RSEG files and asserts, via reader stats,
// that the diff decoded only the touched thread columns on each side.
func TestLazyPairDiffRSEG(t *testing.T) {
	const threads, per = 16, 30
	build := func(name string, tweak bool) string {
		tr := trace.New(name)
		for i := 0; i < threads*per; i++ {
			tid := trace.ThreadID(i % threads)
			arg := fmt.Sprint(i)
			if tweak && tid == 5 && i/threads == 10 {
				arg = "changed" // one divergent value inside thread 5
			}
			tr.Append(tid, fmt.Sprintf("W%d.run/0", tid),
				trace.Repr{Loc: trace.Loc(tid + 1), Class: "Worker", Seq: int(tid) + 1},
				trace.Event{Kind: trace.KindCall, Member: "Worker.step/1",
					Target: trace.Repr{Loc: trace.Loc(tid + 1), Class: "Worker", Seq: int(tid) + 1},
					Args:   []trace.Repr{trace.PrimRepr("Int", arg)}})
		}
		path := filepath.Join(t.TempDir(), name+".seg")
		if err := tr.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	left, err := trace.OpenRSEG(build("left", false))
	if err != nil {
		t.Fatal(err)
	}
	defer left.Close()
	right, err := trace.OpenRSEG(build("right", true))
	if err != nil {
		t.Fatal(err)
	}
	defer right.Close()

	lp, err := left.Select(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := right.Select(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := diff.ViewDiff(lp, rp, diff.ViewOptions{})
	if res == nil {
		t.Fatal("ViewDiff returned nil")
	}

	for side, r := range map[string]*trace.Reader{"left": left, "right": right} {
		st := r.Stats()
		if st.ThreadsMaterialized != 2 {
			t.Errorf("%s reader materialized %d of %d thread blocks; the pair diff must touch exactly 2",
				side, st.ThreadsMaterialized, st.Threads)
		}
		if st.EntriesMaterialized != 2*per {
			t.Errorf("%s reader materialized %d entries, want %d",
				side, st.EntriesMaterialized, 2*per)
		}
	}
}
