package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func intRepr(v int64) Repr {
	return PrimRepr("Int", itoa(v))
}

func itoa(v int64) string {
	// small helper to avoid importing strconv in every call site
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestAppendAssignsConsecutiveEIDs(t *testing.T) {
	tr := New("t")
	for i := 0; i < 5; i++ {
		id := tr.Append(1, "main", Repr{}, Event{Kind: KindCall, Member: "m"})
		if int(id) != i {
			t.Fatalf("Append #%d returned eid %d", i, id)
		}
	}
	for i, e := range tr.Entries {
		if int(e.EID) != i {
			t.Errorf("entry %d has EID %d", i, e.EID)
		}
	}
}

func TestAtBounds(t *testing.T) {
	tr := New("t")
	tr.Append(1, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	if _, ok := tr.At(0); !ok {
		t.Error("At(0) should exist")
	}
	if _, ok := tr.At(-1); ok {
		t.Error("At(-1) should not exist")
	}
	if _, ok := tr.At(1); ok {
		t.Error("At(1) should not exist")
	}
}

func TestPadEOFEqualizesLengths(t *testing.T) {
	l, r := New("l"), New("r")
	for i := 0; i < 3; i++ {
		l.Append(1, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	}
	r.Append(1, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	PadEOF(l, r)
	if l.Len() != r.Len() {
		t.Fatalf("lengths differ after PadEOF: %d vs %d", l.Len(), r.Len())
	}
	if l.Len() != 4 {
		t.Fatalf("left length = %d, want 4 (3 entries + 1 eof)", l.Len())
	}
	if !l.Entries[3].IsEOF() {
		t.Error("last left entry should be eof")
	}
	for i := 1; i < 4; i++ {
		if !r.Entries[i].IsEOF() {
			t.Errorf("right entry %d should be eof", i)
		}
	}
	// EIDs stay consecutive through padding.
	for i, e := range r.Entries {
		if int(e.EID) != i {
			t.Errorf("right entry %d has EID %d after padding", i, e.EID)
		}
	}
}

func TestPadEOFBothEmpty(t *testing.T) {
	l, r := New("l"), New("r")
	PadEOF(l, r)
	if l.Len() != 1 || r.Len() != 1 {
		t.Fatalf("lengths = %d,%d, want 1,1", l.Len(), r.Len())
	}
}

func TestEventEqualIgnoresLocationAndSeq(t *testing.T) {
	a := Entry{
		TID: 1, Method: "m",
		Event: Event{Kind: KindCall, Target: Repr{Loc: 10, Class: "C", Hash: 7, Str: "C:[x]", Seq: 1},
			Member: "run", Args: []Repr{intRepr(3)}},
	}
	b := a
	b.Event.Target.Loc = 99
	b.Event.Target.Seq = 42
	b.TID = 5
	b.EID = 17
	if !EventEqual(a, b) {
		t.Error("entries differing only in location/seq/context must be =e")
	}
}

func TestEventEqualDistinguishes(t *testing.T) {
	base := Entry{Event: Event{Kind: KindSet, Target: Repr{Class: "C", Hash: 1, Str: "s"},
		Member: "f", Args: []Repr{intRepr(32)}}}

	diffValue := base
	diffValue.Event.Args = []Repr{intRepr(1)}
	if EventEqual(base, diffValue) {
		t.Error("different written values must not be =e")
	}

	diffField := base
	diffField.Event.Member = "g"
	if EventEqual(base, diffField) {
		t.Error("different fields must not be =e")
	}

	diffKind := base
	diffKind.Event.Kind = KindGet
	if EventEqual(base, diffKind) {
		t.Error("different kinds must not be =e")
	}

	diffClass := base
	diffClass.Event.Target.Class = "D"
	if EventEqual(base, diffClass) {
		t.Error("different target classes must not be =e")
	}

	diffArity := base
	diffArity.Event.Args = nil
	if EventEqual(base, diffArity) {
		t.Error("different arities must not be =e")
	}
}

func TestEventEqualForkByStackShape(t *testing.T) {
	mkFork := func(methods ...string) Entry {
		var frames []Frame
		for _, m := range methods {
			frames = append(frames, Frame{Method: m, Callee: Repr{Class: "C"}})
		}
		return Entry{Event: Event{Kind: KindFork, Member: "7", Stack: frames}}
	}
	a := mkFork("main", "startWorkers")
	b := mkFork("main", "startWorkers")
	b.Event.Member = "12" // different child tid must not matter
	if !EventEqual(a, b) {
		t.Error("forks with identical spawn stacks must be =e")
	}
	c := mkFork("main", "other")
	if EventEqual(a, c) {
		t.Error("forks with different spawn stacks must not be =e")
	}
}

func TestStackSimilarity(t *testing.T) {
	f := func(m string) Frame { return Frame{Method: m, Callee: Repr{Class: "C"}} }
	cases := []struct {
		a, b []Frame
		want float64
	}{
		{nil, nil, 1},
		{[]Frame{f("a")}, []Frame{f("a")}, 1},
		{[]Frame{f("a")}, []Frame{f("b")}, 0},
		{[]Frame{f("x"), f("a")}, []Frame{f("y"), f("a")}, 0.5},
		{[]Frame{f("a")}, []Frame{f("x"), f("a")}, 0.5},
		{[]Frame{f("a")}, nil, 0},
	}
	for i, c := range cases {
		if got := StackSimilarity(c.a, c.b); got != c.want {
			t.Errorf("case %d: similarity = %v, want %v", i, got, c.want)
		}
	}
}

func TestStackSimilaritySymmetric(t *testing.T) {
	gen := func(seed int64) []Frame {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		frames := make([]Frame, n)
		for i := range frames {
			frames[i] = Frame{Method: string(rune('a' + r.Intn(3)))}
		}
		return frames
	}
	prop := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return StackSimilarity(a, b) == StackSimilarity(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializationString(t *testing.T) {
	s := Object("Pair", []Serialization{Prim("Int", "1"), Prim("Int", "2")})
	if got, want := s.String(), "Pair:[Int:[1],Int:[2]]"; got != want {
		t.Errorf("serialization = %q, want %q", got, want)
	}
}

func TestSerializationTruncation(t *testing.T) {
	// Build a deep nesting whose rendering exceeds MaxReprString.
	s := Prim("Int", "1")
	for i := 0; i < 100; i++ {
		s = Object("Box", []Serialization{s})
	}
	if got := s.String(); len(got) > MaxReprString {
		t.Errorf("rendered length %d exceeds cap %d", len(got), MaxReprString)
	}
}

func TestSerializationTruncatesOnRuneBoundary(t *testing.T) {
	// A primitive whose literal is all multi-byte runes: a naive byte cut
	// at MaxReprString would split one in half.
	lit := strings.Repeat("é", MaxReprString) // 2 bytes each
	s := Prim("Str", lit)
	got := s.String()
	if len(got) > MaxReprString {
		t.Fatalf("rendered length %d exceeds cap %d", len(got), MaxReprString)
	}
	if !utf8.ValidString(got) {
		t.Errorf("truncated rendering is not valid UTF-8: %q", got)
	}
	// Three-byte runes land the cut differently; must still be valid.
	s3 := Prim("Str", strings.Repeat("€", MaxReprString))
	if got := s3.String(); !utf8.ValidString(got) || len(got) > MaxReprString {
		t.Errorf("3-byte rune truncation broken: len=%d valid=%v", len(got), utf8.ValidString(got))
	}
}

func TestSerializationHashDistinguishesBeyondTruncation(t *testing.T) {
	// Two values identical in the first 128 chars but differing deeper must
	// still get different hashes: the hash covers the full structure.
	long := make([]Serialization, 40)
	for i := range long {
		long[i] = Prim("Int", "7")
	}
	a := Object("Arr", long)
	longB := make([]Serialization, 40)
	copy(longB, long)
	longB[39] = Prim("Int", "8")
	b := Object("Arr", longB)
	if a.String() != b.String() {
		t.Skip("truncation point moved; adjust test sizes")
	}
	if a.HashValue() == b.HashValue() {
		t.Error("hash must distinguish values that truncation conflates")
	}
}

func TestHashValueNeverZero(t *testing.T) {
	prop := func(typ, lit string) bool {
		return Prim(typ, lit).HashValue() != 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrimReprAndObjectRepr(t *testing.T) {
	p := PrimRepr("Int", "42")
	if p.Loc != NoLoc || !p.HasValue() || p.Class != "Int" {
		t.Errorf("bad prim repr: %+v", p)
	}
	s := Object("C", nil)
	o := ObjectRepr(5, "C", 2, s, true)
	if o.Loc != 5 || o.Seq != 2 || !o.HasValue() {
		t.Errorf("bad object repr: %+v", o)
	}
	empty := ObjectRepr(5, "C", 2, s, false)
	if empty.HasValue() {
		t.Error("opted-out object must have empty value representation")
	}
	if !ObjectRepr(9, "C", 3, s, true).ValueEqual(o) {
		t.Error("value equality must ignore loc and seq")
	}
}

func TestReprValueEqualReflexiveProperty(t *testing.T) {
	prop := func(class, str string, hash uint64, loc int64, seq int) bool {
		r := Repr{Loc: Loc(loc), Class: class, Hash: hash, Str: str, Seq: seq}
		o := r
		o.Loc, o.Seq = Loc(loc+1), seq+1
		return r.ValueEqual(r) && r.ValueEqual(o)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripIO(t *testing.T) {
	tr := New("rt")
	tr.Append(1, "main", Repr{}, Event{Kind: KindInit, Member: "C",
		Target: Repr{Loc: 1, Class: "C", Seq: 1}, Args: []Repr{intRepr(32), intRepr(127)}})
	tr.Append(1, "main", Repr{Loc: 1, Class: "C"}, Event{Kind: KindSet,
		Target: Repr{Loc: 1, Class: "C"}, Member: "min", Args: []Repr{intRepr(32)}})
	tr.Append(2, "worker", Repr{}, Event{Kind: KindFork, Member: "2",
		Stack: []Frame{{Method: "main", Callee: Repr{Class: "Main"}}}})

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	tr := New("f")
	tr.Append(1, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	path := dir + "/t.trace"
	if err := tr.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != 1 || got.Name != "f" {
		t.Errorf("loaded %q len %d", got.Name, got.Len())
	}
}

func TestThreadIDs(t *testing.T) {
	tr := New("t")
	tr.Append(3, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	tr.Append(1, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	tr.Append(3, "m", Repr{}, Event{Kind: KindCall, Member: "x"})
	tr.Entries = append(tr.Entries, Entry{EID: 3, TID: -1, Event: Event{Kind: KindEOF}})
	got := tr.ThreadIDs()
	want := []ThreadID{3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ThreadIDs = %v, want %v", got, want)
	}
}

func TestComputeStats(t *testing.T) {
	tr := New("s")
	c := Repr{Loc: 1, Class: "C", Seq: 1}
	tr.Append(1, "main", Repr{}, Event{Kind: KindInit, Member: "C", Target: c})
	tr.Append(1, "main", Repr{}, Event{Kind: KindCall, Target: c, Member: "run"})
	tr.Append(1, "run", c, Event{Kind: KindGet, Target: c, Member: "f", Args: []Repr{intRepr(1)}})
	tr.Append(1, "run", c, Event{Kind: KindSet, Target: c, Member: "f", Args: []Repr{intRepr(2)}})
	tr.Append(1, "main", Repr{}, Event{Kind: KindReturn, Target: c, Member: "run"})
	s := ComputeStats(tr)
	if s.Entries != 5 {
		t.Errorf("entries = %d", s.Entries)
	}
	if s.Threads != 1 {
		t.Errorf("threads = %d", s.Threads)
	}
	if s.Objects != 1 {
		t.Errorf("objects = %d", s.Objects)
	}
	if s.ByKind[KindGet] != 1 || s.ByKind[KindSet] != 1 {
		t.Errorf("kind counts: %v", s.ByKind)
	}
}

func TestEntryStringForms(t *testing.T) {
	c := Repr{Loc: 1, Class: "C", Seq: 1}
	cases := []Entry{
		{Event: Event{Kind: KindEOF}},
		{Event: Event{Kind: KindGet, Target: c, Member: "f", Args: []Repr{intRepr(1)}}},
		{Event: Event{Kind: KindSet, Target: c, Member: "f", Args: []Repr{intRepr(1)}}},
		{Event: Event{Kind: KindCall, Target: c, Member: "m"}},
		{Event: Event{Kind: KindReturn, Target: c, Member: "m"}},
		{Event: Event{Kind: KindInit, Target: c, Member: "C"}},
		{Event: Event{Kind: KindFork, Member: "2"}},
		{Event: Event{Kind: KindEnd}},
	}
	for _, e := range cases {
		if e.String() == "" {
			t.Errorf("empty String() for kind %v", e.Event.Kind)
		}
	}
	if FormatEntries(cases) == "" {
		t.Error("FormatEntries empty")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New("jl")
	tr.Append(1, "Main.main/0", Repr{Loc: 1, Class: "Main", Seq: 1}, Event{
		Kind: KindInit, Member: "C",
		Target: Repr{Loc: 2, Class: "C", Seq: 1, Hash: 9, Str: "C:[]"},
		Args:   []Repr{intRepr(32), intRepr(127)},
	})
	tr.Append(1, "Main.main/0", Repr{}, Event{Kind: KindFork, Member: "2",
		Stack: []Frame{{Method: "Main.main/0", Callee: Repr{Class: "Main"}}}})
	tr.Append(2, "w", Repr{}, Event{Kind: KindEnd})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL("jl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip %d entries, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Entries {
		if !reflect.DeepEqual(tr.Entries[i], got.Entries[i]) {
			t.Errorf("entry %d mismatch:\n got %+v\nwant %+v", i, got.Entries[i], tr.Entries[i])
		}
	}
}

func TestJSONLRejectsBadKind(t *testing.T) {
	in := `{"eid":0,"tid":1,"kind":"frobnicate"}` + "\n"
	if _, err := ReadJSONL("x", bytes.NewReader([]byte(in))); err == nil {
		t.Error("unknown kind must be rejected")
	}
}
