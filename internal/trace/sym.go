package trace

import "sync"

// Sym is an interned symbol: a dense integer id standing for a method
// signature, class name, member name, or value-representation string.
// Interning happens once — at trace-construction (or load) time — so the
// hot analysis paths (view keying, event equality, correlation) compare
// single machine words instead of hashing and comparing strings per event.
// The zero Sym (NoSym) means "no symbol": either the empty string or a
// field that has not been interned yet.
type Sym uint32

// NoSym is the absent symbol. It is what the empty string interns to, and
// what the Sym fields of hand-built entries hold before EnsureSyms.
const NoSym Sym = 0

// SymbolTable is a string interner with precomputed 64-bit FNV-1a hashes.
// It is safe for concurrent use; lookups of already-interned strings take
// only a read lock. The hash fingerprints are computed once per distinct
// string (off the hot path) and exist for consumers that need a stable
// key space wider than table-local ids — notably future sharded/parallel
// diffing, where per-shard tables cannot share dense ids.
type SymbolTable struct {
	mu     sync.RWMutex
	ids    map[string]Sym
	strs   []string // index = Sym; strs[0] = ""
	hashes []uint64 // index = Sym; hashes[0] = 0
	bytes  int64
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{
		ids:    make(map[string]Sym),
		strs:   []string{""},
		hashes: []uint64{0},
	}
}

// Intern returns the symbol for s, assigning the next id on first sight.
// The empty string interns to NoSym. Distinct strings always receive
// distinct symbols, even under 64-bit hash collisions: identity is keyed
// by the string itself, the hash is merely a precomputed fingerprint.
func (st *SymbolTable) Intern(s string) Sym {
	if s == "" {
		return NoSym
	}
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok = st.ids[s]; ok {
		return id
	}
	id = Sym(len(st.strs))
	st.ids[s] = id
	st.strs = append(st.strs, s)
	st.hashes = append(st.hashes, fnv64a(s))
	st.bytes += int64(len(s))
	return id
}

// InternBytes is Intern for a byte slice. A string already in the table
// is found without copying b (the map lookup converts in place); only a
// first sight pays the string allocation — the fast path for loaders
// that decode symbol blocks from (possibly memory-mapped) file images.
func (st *SymbolTable) InternBytes(b []byte) Sym {
	if len(b) == 0 {
		return NoSym
	}
	st.mu.RLock()
	id, ok := st.ids[string(b)]
	st.mu.RUnlock()
	if ok {
		return id
	}
	return st.Intern(string(b))
}

// InternBatch interns every byte string in bs under a single lock
// acquisition, appending each symbol and its canonical string to syms
// and strs (returned re-sliced). One lock round trip per *block* instead
// of two atomic operations per *string* is what keeps loading a
// many-symbol trace file cheap; strings already in the table are found
// without copying their bytes.
func (st *SymbolTable) InternBatch(bs [][]byte, syms []Sym, strs []string) ([]Sym, []string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, b := range bs {
		if len(b) == 0 {
			syms = append(syms, NoSym)
			strs = append(strs, "")
			continue
		}
		id, ok := st.ids[string(b)]
		if !ok {
			s := string(b)
			id = Sym(len(st.strs))
			st.ids[s] = id
			st.strs = append(st.strs, s)
			st.hashes = append(st.hashes, fnv64a(s))
			st.bytes += int64(len(s))
		}
		syms = append(syms, id)
		strs = append(strs, st.strs[id])
	}
	return syms, strs
}

// Lookup returns the symbol for s without interning it.
func (st *SymbolTable) Lookup(s string) (Sym, bool) {
	if s == "" {
		return NoSym, true
	}
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	return id, ok
}

// Str returns the string a symbol stands for ("" for NoSym or an id this
// table never issued).
func (st *SymbolTable) Str(id Sym) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(id) >= len(st.strs) {
		return ""
	}
	return st.strs[id]
}

// Hash returns the precomputed 64-bit fingerprint of a symbol's string.
func (st *SymbolTable) Hash(id Sym) uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(id) >= len(st.hashes) {
		return 0
	}
	return st.hashes[id]
}

// Len returns the number of distinct symbols interned.
func (st *SymbolTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.strs) - 1
}

// Bytes returns the total size of the distinct interned strings — the
// "interned bytes" statistic reported by rprism-bench.
func (st *SymbolTable) Bytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.bytes
}

// fnv64a is FNV-1a over the string bytes, allocation-free.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Symbols is the process-wide symbol table. Every trace produced or
// loaded in this process interns into it, which makes Sym values directly
// comparable across traces — the property the differencing hot paths rely
// on. Trace files carry their own compact symbol block and are remapped
// into this table once at load time.
var Symbols = NewSymbolTable()

// Intern interns s into the process-wide table.
func Intern(s string) Sym { return Symbols.Intern(s) }

// SymStr resolves a symbol from the process-wide table.
func SymStr(id Sym) string { return Symbols.Str(id) }

// EnsureSym returns sym if already interned, otherwise interns s. It is
// the bridge for entries built by hand (tests, external producers) whose
// Sym fields are still zero.
func EnsureSym(sym Sym, s string) Sym {
	if sym != NoSym || s == "" {
		return sym
	}
	return Intern(s)
}

// SymbolStats summarizes the process-wide table for reporting.
type SymbolStats struct {
	Distinct int   `json:"distinct"` // distinct symbols interned
	Bytes    int64 `json:"bytes"`    // total bytes of distinct interned strings
}

// Stats snapshots a table's statistics.
func (st *SymbolTable) Stats() SymbolStats {
	return SymbolStats{Distinct: st.Len(), Bytes: st.Bytes()}
}

// GlobalSymbolStats snapshots the process-wide table's statistics.
func GlobalSymbolStats() SymbolStats {
	return Symbols.Stats()
}
