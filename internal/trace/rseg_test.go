package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// rsegImage encodes a trace to RSEG bytes.
func rsegImage(t testing.TB, tr *Trace, opts RSEGOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteRSEGOpts(&buf, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRSEGRoundTripMultithreaded(t *testing.T) {
	for _, opts := range []RSEGOptions{{}, {Compress: true}} {
		t.Run(fmt.Sprintf("compress=%v", opts.Compress), func(t *testing.T) {
			tr := multithreadedTrace()
			r, err := OpenRSEGBytes(rsegImage(t, tr, opts), "mem")
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Trace()
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != tr.Name {
				t.Errorf("name = %q, want %q", got.Name, tr.Name)
			}
			if got.Len() != tr.Len() {
				t.Fatalf("round trip %d entries, want %d", got.Len(), tr.Len())
			}
			for i := range tr.Entries {
				if !reflect.DeepEqual(tr.Entries[i], got.Entries[i]) {
					t.Errorf("entry %d mismatch:\n got %+v\nwant %+v", i, got.Entries[i], tr.Entries[i])
				}
			}
			if !reflect.DeepEqual(got.ThreadIDs(), tr.ThreadIDs()) {
				t.Errorf("thread ids %v, want %v", got.ThreadIDs(), tr.ThreadIDs())
			}
			if d1, d2 := tr.ComputeDigest(), got.ComputeDigest(); d1 != d2 {
				t.Errorf("digest changed across round trip: %s vs %s", d1, d2)
			}
		})
	}
}

func TestRSEGRoundTripEmpty(t *testing.T) {
	r, err := OpenRSEGBytes(rsegImage(t, New("empty"), RSEGOptions{}), "mem")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "empty" {
		t.Errorf("empty trace loaded as %q with %d entries", got.Name, got.Len())
	}
}

func TestRSEGSaveLoadFile(t *testing.T) {
	tr := multithreadedTrace()
	path := filepath.Join(t.TempDir(), "mt.seg")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	// The default Save format is RSEG, and Load sniffs it back.
	if f, err := SniffFile(path); err != nil || f != FormatRSEG {
		t.Fatalf("SniffFile = %v, %v; want rseg", f, err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := tr.ComputeDigest(), got.ComputeDigest(); d1 != d2 {
		t.Errorf("digest changed across save/load: %s vs %s", d1, d2)
	}
}

func TestSaveFormatSniffRoundTrip(t *testing.T) {
	tr := multithreadedTrace()
	want := tr.ComputeDigest()
	for _, format := range []Format{FormatRSEG, FormatGob, FormatJSONL} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.seg")
			if err := tr.SaveFormat(path, format); err != nil {
				t.Fatal(err)
			}
			if f, err := SniffFile(path); err != nil || f != format {
				t.Fatalf("SniffFile = %v, %v; want %v", f, err, format)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if d := got.ComputeDigest(); d != want {
				t.Errorf("%v round trip digest %s, want %s", format, d, want)
			}
		})
	}
}

func TestParseFormat(t *testing.T) {
	for _, format := range []Format{FormatRSEG, FormatGob, FormatJSONL} {
		got, ok := ParseFormat(format.String())
		if !ok || got != format {
			t.Errorf("ParseFormat(%q) = %v, %v", format.String(), got, ok)
		}
	}
	if _, ok := ParseFormat("tarball"); ok {
		t.Error("ParseFormat accepted an unknown name")
	}
}

// manyThreadTrace builds a trace with n threads of k entries each,
// round-robin interleaved, with per-thread distinguishable content.
func manyThreadTrace(n, k int) *Trace {
	tr := New("many")
	for i := 0; i < n*k; i++ {
		tid := ThreadID(i % n)
		tr.Append(tid, fmt.Sprintf("W%d.run/0", tid),
			Repr{Loc: Loc(tid + 1), Class: "Worker", Seq: int(tid) + 1},
			Event{Kind: KindCall, Member: fmt.Sprintf("W%d.step%d/0", tid, i/n),
				Target: Repr{Loc: Loc(i + 100), Class: "Job", Seq: i + 1},
				Args:   []Repr{PrimRepr("Int", fmt.Sprint(i))}})
	}
	return tr
}

func TestRSEGLazySelectDecodesOnlyTouchedThreads(t *testing.T) {
	const threads, per = 12, 50
	tr := manyThreadTrace(threads, per)
	r, err := OpenRSEGBytes(rsegImage(t, tr, RSEGOptions{}), "mem")
	if err != nil {
		t.Fatal(err)
	}

	// Opening and inspecting the index decodes nothing.
	st := r.Stats()
	if st.Threads != threads || st.Entries != threads*per {
		t.Fatalf("index reports %d threads / %d entries, want %d / %d",
			st.Threads, st.Entries, threads, per*threads)
	}
	if st.ThreadsMaterialized != 0 || st.EntriesMaterialized != 0 {
		t.Fatalf("open materialized %d threads / %d entries; the open must be lazy",
			st.ThreadsMaterialized, st.EntriesMaterialized)
	}
	if n, ok := r.ThreadLen(3); !ok || n != per {
		t.Fatalf("ThreadLen(3) = %d, %v; want %d from the footer index", n, ok, per)
	}
	if st = r.Stats(); st.ThreadsMaterialized != 0 {
		t.Fatal("ThreadLen decoded a thread block")
	}

	// Selecting a 2-thread pair touches exactly those two blocks.
	pair, err := r.Select(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.ThreadsMaterialized != 2 {
		t.Errorf("Select(3, 7) materialized %d thread blocks, want exactly 2", st.ThreadsMaterialized)
	}
	if st.EntriesMaterialized != 2*per {
		t.Errorf("Select(3, 7) materialized %d entries, want %d", st.EntriesMaterialized, 2*per)
	}

	// The selection is a well-formed standalone trace: dense ids, merged
	// in original execution order, content preserved.
	if pair.Len() != 2*per {
		t.Fatalf("selected %d entries, want %d", pair.Len(), 2*per)
	}
	seen := 0
	for i, e := range pair.Entries {
		if int(e.EID) != i {
			t.Fatalf("selected entry %d has eid %d: ids must be dense", i, e.EID)
		}
		if e.TID != 3 && e.TID != 7 {
			t.Fatalf("selected entry %d from thread %d", i, e.TID)
		}
		if e.Method == "W3.run/0" {
			seen++
		}
	}
	if seen != per {
		t.Errorf("thread 3 contributed %d entries to the selection, want %d", seen, per)
	}

	// A later full materialization touches the remaining blocks.
	if _, err := r.Trace(); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.ThreadsMaterialized != threads || st.EntriesMaterialized != threads*per {
		t.Errorf("full Trace() left stats at %d/%d threads, %d/%d entries",
			st.ThreadsMaterialized, threads, st.EntriesMaterialized, threads*per)
	}
}

func TestRSEGThreadSharedSlice(t *testing.T) {
	tr := manyThreadTrace(4, 10)
	r, err := OpenRSEGBytes(rsegImage(t, tr, RSEGOptions{}), "mem")
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Thread(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Thread(2)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("repeated Thread calls re-decoded the block")
	}
	if st := r.Stats(); st.ThreadsMaterialized != 1 {
		t.Errorf("two Thread(2) calls materialized %d blocks", st.ThreadsMaterialized)
	}
	// Entries keep their original (non-dense) ids in thread order.
	for i := 1; i < len(a); i++ {
		if a[i].EID <= a[i-1].EID {
			t.Fatalf("thread entries out of order at %d: %d then %d", i, a[i-1].EID, a[i].EID)
		}
	}
	if _, err := r.Thread(99); err == nil {
		t.Error("Thread of an unknown tid succeeded")
	}
	if _, err := r.Select(2, 99); err == nil {
		t.Error("Select naming an unknown tid succeeded")
	}
}

func TestRSEGReaderFromFile(t *testing.T) {
	tr := manyThreadTrace(6, 20)
	path := filepath.Join(t.TempDir(), "many.seg")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRSEG(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.MappedBytes == 0 {
		t.Error("reader reports no mapped bytes")
	}
	got, err := r.Select(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Materialized entries survive Close: strings were interned copies,
	// never aliases of the released mapping.
	for i := range got.Entries {
		if got.Entries[i].Method == "" || got.Entries[i].MethodSym == NoSym {
			t.Fatalf("entry %d lost its strings after Close", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// TestRSEGCorruption drives structurally damaged images through the
// opener and the decoder: every malformation must surface as a
// *FormatError naming an offset — never a panic, never a raw slice
// error.
func TestRSEGCorruption(t *testing.T) {
	valid := rsegImage(t, multithreadedTrace(), RSEGOptions{})
	validz := rsegImage(t, multithreadedTrace(), RSEGOptions{Compress: true})

	mutate := func(img []byte, f func([]byte)) []byte {
		out := append([]byte(nil), img...)
		f(out)
		return out
	}
	for _, tc := range []struct {
		name string
		img  []byte
	}{
		{"empty", nil},
		{"truncated to one byte", valid[:1]},
		{"truncated header", valid[:rsegHeaderSize-2]},
		{"truncated half", valid[:len(valid)/2]},
		{"missing tail", valid[:len(valid)-rsegTailSize]},
		{"bad magic", mutate(valid, func(b []byte) { b[0] = 'X' })},
		{"future version", mutate(valid, func(b []byte) { b[4] = 99 })},
		{"header bit flip", mutate(valid, func(b []byte) { b[5] ^= 0x80 })},
		{"tail magic scribbled", mutate(valid, func(b []byte) { b[len(b)-1] ^= 0xff })},
		{"footer offset out of range", mutate(valid, func(b []byte) {
			for i := 0; i < 8; i++ {
				b[len(b)-rsegTailSize+i] = 0xff
			}
		})},
		{"footer bit flip", mutate(valid, func(b []byte) { b[len(b)-rsegTailSize-3] ^= 0x10 })},
		{"block bit flip", mutate(valid, func(b []byte) { b[rsegHeaderSize+5] ^= 0x01 })},
		{"compressed block bit flip", mutate(validz, func(b []byte) { b[rsegHeaderSize+5] ^= 0x01 })},
		{"all garbage", mutate(valid, func(b []byte) {
			for i := range b {
				b[i] ^= 0x5a
			}
		})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := OpenRSEGBytes(tc.img, "corrupt")
			if err == nil {
				// Structural shell may survive a payload flip; the decode
				// must then catch it.
				_, err = r.Trace()
			}
			if err == nil {
				t.Fatal("corrupted image decoded without error")
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("error is %T (%v), want *FormatError", err, err)
			}
			if fe.Format != "rseg" || fe.Path != "corrupt" || fe.Offset < 0 {
				t.Errorf("FormatError lacks context: %+v", fe)
			}
		})
	}
}

func TestRSEGCorruptFileViaLoad(t *testing.T) {
	// End to end: a truncated file on disk fails Load with a FormatError
	// that names the path — the error the CLI shows the user.
	tr := multithreadedTrace()
	path := filepath.Join(t.TempDir(), "trunc.seg")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	corrupt(t, path, "truncate-half")
	_, err := Load(path)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("Load error is %T (%v), want *FormatError", err, err)
	}
	if fe.Path != path {
		t.Errorf("FormatError path %q, want %q", fe.Path, path)
	}
}

// TestSegmentOrderNumeric pins the ordering fix: segment files written
// with bare (unpadded) indices — as foreign producers emit them — must
// reassemble in numeric order. Lexicographic order would interleave
// seg.10 between seg.1 and seg.2 and fail the consecutiveness check.
func TestSegmentOrderNumeric(t *testing.T) {
	const segs, per = 12, 4 // > 10 segments so 9 vs 10 is exercised
	big := manyThreadTrace(2, segs*per/2)
	dir := t.TempDir()
	for i := 0; i < segs; i++ {
		part := &Trace{Name: "bare", Entries: big.Entries[i*per : (i+1)*per]}
		path := filepath.Join(dir, fmt.Sprintf("bare.%d.seg", i))
		if err := part.SaveFormat(path, FormatRSEG); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadSegments(dir, "bare")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != segs*per {
		t.Fatalf("reassembled %d entries, want %d", got.Len(), segs*per)
	}
	for i, e := range got.Entries {
		if int(e.EID) != i {
			t.Fatalf("entry %d has eid %d: segments were not ordered numerically", i, e.EID)
		}
	}
}

func TestSortSegmentPaths(t *testing.T) {
	paths := []string{
		"d/run.10.seg", "d/run.2.seg", "d/run.000001.seg", "d/run.0.seg",
		"d/run.x.seg", "d/run.9.seg",
	}
	sortSegmentPaths(paths, "run")
	want := []string{
		"d/run.0.seg", "d/run.000001.seg", "d/run.2.seg", "d/run.9.seg",
		"d/run.10.seg", "d/run.x.seg",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("sorted order %v, want %v", paths, want)
	}
}

func TestLoadSegmentsMixedFormats(t *testing.T) {
	// A directory migrated halfway — gob, JSONL, and RSEG segments side
	// by side — loads fine, because Load sniffs per file.
	big := manyThreadTrace(2, 9) // 18 entries, 3 segments of 6
	dir := t.TempDir()
	formats := []Format{FormatGob, FormatJSONL, FormatRSEG}
	for i, format := range formats {
		part := &Trace{Name: "mix", Entries: big.Entries[i*6 : (i+1)*6]}
		path := filepath.Join(dir, fmt.Sprintf("mix.%06d.seg", i))
		if err := part.SaveFormat(path, format); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadSegments(dir, "mix")
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := big.ComputeDigest(), got.ComputeDigest(); d1 != d2 {
		t.Errorf("mixed-format reassembly changed content: %s vs %s", d1, d2)
	}
}

func TestRSEGCompressionShrinksRepetitiveTraces(t *testing.T) {
	tr := manyThreadTrace(4, 200)
	plain := rsegImage(t, tr, RSEGOptions{})
	packed := rsegImage(t, tr, RSEGOptions{Compress: true})
	if len(packed) >= len(plain) {
		t.Errorf("compressed image is %d bytes, plain %d", len(packed), len(plain))
	}
}

func TestRSEGSmallerThanJSONL(t *testing.T) {
	tr := manyThreadTrace(8, 100)
	var jl bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if rs := rsegImage(t, tr, RSEGOptions{}); len(rs) >= jl.Len() {
		t.Errorf("RSEG image (%d bytes) not smaller than JSONL (%d bytes)", len(rs), jl.Len())
	}
}

func TestSegmentWriterLegacyFormats(t *testing.T) {
	// The writer still produces legacy segment sets on request.
	for _, format := range []Format{FormatGob, FormatJSONL} {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := NewSegmentWriterFormat(dir, "leg", 5, format)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				if _, err := w.Append(1, "M.m/0", Repr{}, Event{Kind: KindCall, Member: "M.m/0"}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if f, err := SniffFile(filepath.Join(dir, "leg.000000.seg")); err != nil || f != format {
				t.Fatalf("segment sniffs as %v, %v; want %v", f, err, format)
			}
			got, err := LoadSegments(dir, "leg")
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != 12 {
				t.Errorf("reassembled %d entries, want 12", got.Len())
			}
		})
	}
}

// benchTrace models the paper's workloads — loop-heavy programs whose
// traces reuse a bounded symbol vocabulary (methods and members bounded
// by code size, values repeating across iterations) — unlike
// manyThreadTrace, whose every entry mints fresh strings.
func benchTrace(threads, per int) *Trace {
	tr := New("bench")
	for i := 0; i < threads*per; i++ {
		tid := ThreadID(i % threads)
		m := fmt.Sprintf("Worker.step%d/1", i%40)
		tr.Append(tid, fmt.Sprintf("Worker.run/%d", tid),
			Repr{Loc: Loc(tid + 1), Class: "Worker", Seq: int(tid) + 1},
			Event{Kind: KindCall, Member: m,
				Target: Repr{Loc: Loc(i%500 + 100), Class: "Job", Seq: i%500 + 1},
				Args:   []Repr{PrimRepr("Int", fmt.Sprint(i%1000))}})
	}
	return tr
}

func BenchmarkRSEGIngest(b *testing.B) {
	tr := benchTrace(8, 2500) // 20k entries
	img := rsegImage(b, tr, RSEGOptions{})
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenRSEGBytes(img, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONLIngest(b *testing.B) {
	tr := benchTrace(8, 2500)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadJSONL("bench", bytes.NewReader(img)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEGLoad(b *testing.B) {
	tr := benchTrace(8, 2500)
	path := filepath.Join(b.TempDir(), "bench.seg")
	if err := tr.Save(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadRSEG(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEGSelectPair(b *testing.B) {
	// The lazy-load win: touching 2 of 32 threads.
	tr := benchTrace(32, 625) // 20k entries
	path := filepath.Join(b.TempDir(), "bench.seg")
	if err := tr.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenRSEG(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Select(3, 17); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkRSEGWrite(b *testing.B) {
	tr := benchTrace(8, 2500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteRSEG(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}
