package trace

import (
	"bytes"
	"testing"
)

// digestFixture builds a small trace exercising every canonical field:
// methods, reprs with and without locations, args, and fork stacks.
func digestFixture(name string) *Trace {
	t := New(name)
	obj := Repr{Loc: 7, Class: "Widget", Hash: 0xbeef, Str: "w1", Seq: 1}
	val := Repr{Class: "Int", Hash: 42, Str: "42"}
	t.Append(1, "Main.main/0", Repr{}, Event{Kind: KindInit, Target: obj, Member: "Widget", Args: []Repr{val}})
	t.Append(1, "Main.main/0", obj, Event{Kind: KindCall, Target: obj, Member: "Widget.spin/1", Args: []Repr{val, val}})
	t.Append(1, "Widget.spin/1", obj, Event{Kind: KindSet, Target: obj, Member: "rpm", Args: []Repr{val}})
	t.Append(1, "Main.main/0", Repr{}, Event{Kind: KindFork, Member: "2",
		Stack: []Frame{{Method: "Main.main/0", Caller: Repr{}, Callee: obj}}})
	t.Append(2, "Widget.run/0", obj, Event{Kind: KindReturn, Target: obj, Member: "Widget.run/0"})
	return t
}

func TestDigestStableAcrossNamesAndSyms(t *testing.T) {
	a := digestFixture("left")
	b := digestFixture("right-different-name")
	// b additionally loses its Sym fields, simulating a trace decoded in
	// another process before re-interning.
	for i := range b.Entries {
		e := &b.Entries[i]
		e.MethodSym, e.Event.MemberSym = NoSym, NoSym
		e.Self.ClassSym, e.Self.StrSym = NoSym, NoSym
		e.Event.Target.ClassSym, e.Event.Target.StrSym = NoSym, NoSym
		for j := range e.Event.Args {
			e.Event.Args[j].ClassSym, e.Event.Args[j].StrSym = NoSym, NoSym
		}
		for j := range e.Event.Stack {
			f := &e.Event.Stack[j]
			f.MethodSym = NoSym
			f.Caller.ClassSym, f.Caller.StrSym = NoSym, NoSym
			f.Callee.ClassSym, f.Callee.StrSym = NoSym, NoSym
		}
	}
	da, db := a.ComputeDigest(), b.ComputeDigest()
	if da != db {
		t.Errorf("digest differs across name/Sym variation: %s vs %s", da, db)
	}
	if da.IsZero() {
		t.Error("digest of a non-empty trace is zero")
	}
}

func TestDigestSensitiveToContent(t *testing.T) {
	a := digestFixture("x")
	b := digestFixture("x")
	b.Entries[2].Event.Args[0].Hash++ // one value changed
	if a.ComputeDigest() == b.ComputeDigest() {
		t.Error("digest ignores a changed argument value")
	}
	c := digestFixture("x")
	c.Entries = c.Entries[:len(c.Entries)-1]
	if a.ComputeDigest() == c.ComputeDigest() {
		t.Error("digest ignores a dropped entry")
	}
}

func TestDigestSurvivesSaveLoad(t *testing.T) {
	a := digestFixture("roundtrip")
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := a.ComputeDigest(), b.ComputeDigest(); da != db {
		t.Errorf("digest changed across gob round-trip: %s vs %s", da, db)
	}
}

func TestCanonicalBytesMatchDigest(t *testing.T) {
	a := digestFixture("bytes")
	raw, err := a.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("canonical encoding is empty")
	}
	var again bytes.Buffer
	if err := a.WriteCanonical(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Error("canonical encoding is not deterministic")
	}
}

func TestParseDigestRoundTrip(t *testing.T) {
	d := digestFixture("parse").ComputeDigest()
	got, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Errorf("ParseDigest(%s) = %s", d, got)
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Error("ParseDigest accepted junk")
	}
	if _, err := ParseDigest("abcd"); err == nil {
		t.Error("ParseDigest accepted a short digest")
	}
}
