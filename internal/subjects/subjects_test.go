package subjects

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/regression"
)

// TestAllSubjectsRunAndRegress exercises every case-study subject:
// sources parse and check, all four runs execute, and the regressing
// input exposes a behaviour change while the correct input does not
// change *relevant* behaviour.
func TestAllSubjectsRunAndRegress(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if err := lang.Check(lang.MustParse(s.Orig)); err != nil {
				t.Fatalf("orig does not check: %v", err)
			}
			if err := lang.Check(lang.MustParse(s.New)); err != nil {
				t.Fatalf("new does not check: %v", err)
			}
			tr, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tr.Outputs["orig-regr"] == tr.Outputs["new-regr"] {
				t.Error("no behaviour change on regressing input")
			}
			for name, trace := range map[string]interface{ Len() int }{
				"orig-correct": tr.OrigCorrect, "new-correct": tr.NewCorrect,
				"orig-regr": tr.OrigRegr, "new-regr": tr.NewRegr,
			} {
				if trace.Len() < 50 {
					t.Errorf("%s trace suspiciously small: %d entries", name, trace.Len())
				}
			}
		})
	}
}

// TestAnalysisFindsCauses runs the full regression-cause analysis on each
// subject and checks the candidate set touches the ground-truth sites.
func TestAnalysisFindsCauses(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			tr, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			an, err := regression.Analyze(regression.Input{
				OrigCorrect: tr.OrigCorrect,
				NewCorrect:  tr.NewCorrect,
				OrigRegr:    tr.OrigRegr,
				NewRegr:     tr.NewRegr,
				RemovalMode: s.RemovalMode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if an.Sizes.D == 0 {
				t.Fatalf("no regression-related sequences\n|A|=%d |B|=%d |C|=%d",
					an.Sizes.A, an.Sizes.B, an.Sizes.C)
			}
			ev := an.EvaluateAgainst(s.Sites)
			if ev.TruePositives == 0 {
				t.Errorf("cause not identified: %+v\n%s", ev, an.Report(5))
			}
			if ev.FalseNegatives == len(s.Sites) {
				t.Errorf("all ground-truth sites missed: %+v\n%s", ev, an.Report(5))
			}
			// Precision: related sequences must overwhelmingly touch the
			// ground-truth sites (the paper reports 0-4 false positives).
			if ev.FalsePositives > ev.TruePositives {
				t.Errorf("more false than true positives: %+v\n%s", ev, an.Report(8))
			}
			// The analysis must narrow the suspected set. For most
			// subjects the narrowing is large; for MyFaces every retained
			// sequence reads the wrongly-initialized range (a true cause
			// contact), so only |D| < |A| is required there.
			if an.Sizes.D >= an.Sizes.A {
				t.Errorf("no narrowing: |A|=%d -> |D|=%d", an.Sizes.A, an.Sizes.D)
			}
			if s.Name != "MyFaces-1130" && an.Sizes.A > 4 && an.Sizes.D*2 > an.Sizes.A {
				t.Errorf("weak narrowing: |A|=%d -> |D|=%d", an.Sizes.A, an.Sizes.D)
			}
		})
	}
}

func TestMyFacesConversionBehaviour(t *testing.T) {
	s := MyFaces()
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The original converts the tab (9) and newline (10) characters of a
	// text/html document; the new version passes them through.
	if !strings.Contains(tr.Outputs["orig-regr"], "&#10;") {
		t.Errorf("orig should convert newline: %q", tr.Outputs["orig-regr"])
	}
	if strings.Contains(tr.Outputs["new-regr"], "&#10;") {
		t.Errorf("new version should not convert newline: %q", tr.Outputs["new-regr"])
	}
	// Both convert 8-bit characters (the é bytes).
	if !strings.Contains(tr.Outputs["new-regr"], "&#195;") {
		t.Errorf("8-bit conversion lost: %q", tr.Outputs["new-regr"])
	}
	// text/plain responses are untouched by both versions.
	if strings.Contains(tr.Outputs["new-correct"], "&#") {
		t.Errorf("plain text must not be converted: %q", tr.Outputs["new-correct"])
	}
}

func TestXalan1725GeneratedCodeExecutes(t *testing.T) {
	s := Xalan1725()
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The generated translet drops the only attribute of <cell> and the
	// last of <row> in the new version.
	if !strings.Contains(tr.Outputs["orig-regr"], "<row a1 a2 a3>") {
		t.Errorf("orig output: %q", tr.Outputs["orig-regr"])
	}
	if !strings.Contains(tr.Outputs["new-regr"], "<row a1 a2>") ||
		strings.Contains(tr.Outputs["new-regr"], "<cell a1>") {
		t.Errorf("new output: %q", tr.Outputs["new-regr"])
	}
	// Both versions agree on the stylesheet without literal elements.
	if tr.Outputs["orig-correct"] != tr.Outputs["new-correct"] {
		t.Errorf("correct outputs differ:\n%q\n%q",
			tr.Outputs["orig-correct"], tr.Outputs["new-correct"])
	}
}

func TestXalan1802ShadowingCornerCase(t *testing.T) {
	s := Xalan1802()
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After the inner element that shadows p closes, the outer binding
	// must be visible again — the new version loses it.
	if !strings.Contains(tr.Outputs["orig-regr"], "[p=uriA]</>[p=uriA]") &&
		!strings.HasSuffix(strings.TrimSpace(tr.Outputs["orig-regr"]), "[p=uriA]</>") {
		t.Logf("orig output: %q", tr.Outputs["orig-regr"])
	}
	if !strings.Contains(tr.Outputs["new-regr"], "(undefined)") {
		t.Errorf("new version should lose the shadowed binding: %q", tr.Outputs["new-regr"])
	}
	if strings.Contains(tr.Outputs["orig-regr"], "(undefined)") {
		t.Errorf("orig version should resolve everything: %q", tr.Outputs["orig-regr"])
	}
}

func TestDerby1633AbortsOnlyOnRegressingQuery(t *testing.T) {
	s := Derby1633()
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Outputs["new-regr"], "ERROR") {
		t.Errorf("new version must abort during query compilation: %q", tr.Outputs["new-regr"])
	}
	if strings.Contains(tr.Outputs["orig-regr"], "ERROR") {
		t.Errorf("orig version must execute the query: %q", tr.Outputs["orig-regr"])
	}
	if strings.Contains(tr.Outputs["new-correct"], "ERROR") {
		t.Errorf("correct query must compile on the new version: %q", tr.Outputs["new-correct"])
	}
	// Multithreading: multiple thread views must exist.
	ids := tr.OrigRegr.ThreadIDs()
	if len(ids) < 3 {
		t.Errorf("expected >= 3 threads, got %v", ids)
	}
}

func TestRhinoInterpreter(t *testing.T) {
	prog := lang.MustParse(RhinoSource())
	if err := lang.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(prog, interp.Options{
		Args: []string{"let:a:3 4 +;out:a 2 *;let:b:a 1 -;out:b b +;out:a b %;"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("runtime error: %v\n%s", res.Err, res.Output)
	}
	// a = 7; print 14; b = 6; print 12; print 7 % 6 = 1.
	want := "14\n12\n1\ndone 5\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestGenScriptDeterministicAndRunnable(t *testing.T) {
	if GenScript(20, 1) != GenScript(20, 1) {
		t.Error("GenScript not deterministic")
	}
	if GenScript(20, 1) == GenScript(20, 2) {
		t.Error("different seeds should differ")
	}
	prog := lang.MustParse(RhinoSource())
	for seed := int64(1); seed <= 5; seed++ {
		script := GenScript(40, seed)
		res, err := interp.Run(prog, interp.Options{Args: []string{script}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !strings.Contains(res.Output, "done 40") {
			t.Errorf("seed %d: compiled %s", seed, res.Output)
		}
		if res.Trace.Len() < 2000 {
			t.Errorf("seed %d: trace only %d entries", seed, res.Trace.Len())
		}
	}
}

func TestSubjectLOC(t *testing.T) {
	for _, s := range All() {
		if s.LOC() < 80 {
			t.Errorf("%s: implausibly small subject (%d lines)", s.Name, s.LOC())
		}
	}
}

// TestSubjectsTypeCheck runs the optional static typing pass over every
// subject version — the subjects are meant to be realistic, well-typed
// programs.
func TestSubjectsTypeCheck(t *testing.T) {
	for _, s := range All() {
		if err := lang.TypeCheck(lang.MustParse(s.Orig)); err != nil {
			t.Errorf("%s orig: %v", s.Name, err)
		}
		if err := lang.TypeCheck(lang.MustParse(s.New)); err != nil {
			t.Errorf("%s new: %v", s.Name, err)
		}
	}
	if err := lang.TypeCheck(lang.MustParse(RhinoSource())); err != nil {
		t.Errorf("rhino: %v", err)
	}
}

// TestSoap169 covers the footnote-5 subject: dynamic state corrupted at
// bootstrap, manifesting only for inputs that hit the default mapping.
func TestSoap169(t *testing.T) {
	s := Soap169()
	if err := lang.TypeCheck(lang.MustParse(s.Orig)); err != nil {
		t.Fatal(err)
	}
	if err := lang.TypeCheck(lang.MustParse(s.New)); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mapped types behave identically; the unmapped type regresses.
	if !strings.Contains(tr.Outputs["orig-regr"], "zzz") {
		t.Errorf("orig should raw-encode the fallback: %q", tr.Outputs["orig-regr"])
	}
	if !strings.Contains(tr.Outputs["new-regr"], "unknown custom") {
		t.Errorf("new version should fail the fallback: %q", tr.Outputs["new-regr"])
	}
	an, err := regression.Analyze(regression.Input{
		OrigCorrect: tr.OrigCorrect, NewCorrect: tr.NewCorrect,
		OrigRegr: tr.OrigRegr, NewRegr: tr.NewRegr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := an.EvaluateAgainst(s.Sites)
	if ev.TruePositives == 0 {
		t.Errorf("cause not identified: %+v\n%s", ev, an.Report(5))
	}
}
