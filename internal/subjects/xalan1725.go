package subjects

// Xalan1725 reproduces XALANJ-1725: a regression in Xalan's XSLT *compiler*
// (XSLTC), which generates Java bytecode. The cause lies in incorrectly
// generated code — the checkAttributesUnique logic emitted for literal
// result elements — so the visible effect only manifests when the
// generated code later executes: an extreme separation of cause and
// effect that confounds static analysis.
//
// The subject models the pipeline with run-time code generation: a
// "stylesheet compiler" builds the source text of a translet class from
// the stylesheet, installs it with Runtime.defineClass, and then executes
// it reflectively over a document. The new compiler version emits a wrong
// attribute-uniqueness check (>= instead of >) in LiteralElement.translate
// output, dropping attributes for elements that have exactly one.
//
// The regressing stylesheet uses a literal element with attributes; the
// similar non-regressing test removes the triggering construct from the
// stylesheet, leaving the rest identical (the paper's protocol for this
// bug).

const xalanCompilerShared = `
opaque class Log {
  Int count;
  void addMsg(String m) { this.count = this.count + 1; return; }
}

class StylesheetParser {
  Int pos;
  StylesheetParser() { super(); this.pos = 0; }
  // A stylesheet is a ; separated list of instructions:
  //   text:<literal>   emit literal text
  //   elem:<name>:<n>  literal result element with n attributes
  //   value:<k>        emit k-th input token
  String nextOp(String sheet) {
    let n = sheet.length();
    if (this.pos >= n) { return ""; }
    let start = this.pos;
    let i = this.pos;
    let stop = 0 == 1;
    while (i < n && !stop) {
      if (sheet.substring(i, i + 1).equals(";")) { stop = true; } else { i = i + 1; }
    }
    this.pos = i + 1;
    return sheet.substring(start, i);
  }
}
`

const xalanDriverShared = `
class Main {
  void main() {
    let log = new Log();
    let compiler = new Compiler(log);
    let sheet = Sys.arg(0);
    let doc = Sys.arg(1);
    let className = compiler.compile(sheet);
    log.addMsg("compiled");
    let translet = Reflect.create(className);
    let out = Reflect.call(translet, "transform", doc);
    Sys.print(out);
  }
}
`

const xalan1725Orig = xalanCompilerShared + `
class Compiler {
  Log log;
  Int emitted;
  Compiler(Log log) { super(); this.log = log; this.emitted = 0; }

  String compile(String sheet) {
    let parser = new StylesheetParser();
    let body = "";
    let op = parser.nextOp(sheet);
    while (!op.equals("")) {
      body = body + this.translate(op);
      this.emitted = this.emitted + 1;
      op = parser.nextOp(sheet);
    }
    let src = "class Translet { String transform(String doc) { let out = \"\"; " + body + " return out; } }";
    Runtime.defineClass(src);
    return "Translet";
  }

  // LiteralElement.translate: emits code for one instruction. For literal
  // elements the generated code checks attribute uniqueness by comparing
  // the attribute index against the count with > (correct).
  String translate(String op) {
    this.log.addMsg("translate op");
    if (op.startsWith("text:")) {
      let lit = op.substring(5, op.length());
      return "out = out + \"" + lit + "\"; ";
    }
    if (op.startsWith("elem:")) {
      return this.translateElement(op);
    }
    if (op.startsWith("value:")) {
      let k = op.substring(6, op.length());
      return "out = out + doc.charAt(" + k + ") + \"!\"; ";
    }
    return "";
  }

  String translateElement(String op) {
    let rest = op.substring(5, op.length());
    let sep = rest.indexOf(":");
    let name = rest.substring(0, sep);
    let count = rest.substring(sep + 1, rest.length());
    let code = "out = out + \"<" + name + "\"; ";
    code = code + "let ac = " + count + "; let ai = 1; ";
    code = code + "while (!(ai > ac)) { out = out + \" a\" + ai; ai = ai + 1; } ";
    code = code + "out = out + \">\"; ";
    return code;
  }
}
` + xalanDriverShared

const xalan1725New = xalanCompilerShared + `
class Compiler {
  Log log;
  Int emitted;
  Compiler(Log log) { super(); this.log = log; this.emitted = 0; }

  String compile(String sheet) {
    let parser = new StylesheetParser();
    let body = "";
    let op = parser.nextOp(sheet);
    while (!op.equals("")) {
      body = body + this.translate(op);
      this.emitted = this.emitted + 1;
      op = parser.nextOp(sheet);
    }
    let src = "class Translet { String transform(String doc) { let out = \"\"; " + body + " return out; } }";
    Runtime.defineClass(src);
    return "Translet";
  }

  String translate(String op) {
    this.log.addMsg("translate op v2");
    if (op.startsWith("text:")) {
      let lit = op.substring(5, op.length());
      return "out = out + \"" + lit + "\"; ";
    }
    if (op.startsWith("elem:")) {
      return this.translateElement(op);
    }
    if (op.startsWith("value:")) {
      let k = op.substring(6, op.length());
      return "out = out + doc.charAt(" + k + ") + \"!\"; ";
    }
    return "";
  }

  // REGRESSION: the rewritten checkAttributesUnique emission uses >=
  // instead of >, so the generated loop skips the last attribute of every
  // literal element.
  String translateElement(String op) {
    let rest = op.substring(5, op.length());
    let sep = rest.indexOf(":");
    let name = rest.substring(0, sep);
    let count = rest.substring(sep + 1, rest.length());
    let code = "out = out + \"<" + name + "\"; ";
    code = code + "let ac = " + count + "; let ai = 1; ";
    code = code + "while (!(ai >= ac)) { out = out + \" a\" + ai; ai = ai + 1; } ";
    code = code + "out = out + \">\"; ";
    return code;
  }
}
` + xalanDriverShared

// Xalan1725 returns the code-generation subject. The regressing
// stylesheet contains literal elements with attributes; the similar
// non-regressing stylesheet omits them (constructed, as in the paper, by
// removing the small triggering section from the input).
func Xalan1725() Subject {
	regrSheet := "text:header ;value:0;text:mid ;elem:row:3;value:1;text:tail ;elem:cell:1;text:done;"
	correctSheet := "text:header ;value:0;text:mid ;value:1;text:tail ;text:done;"
	return Subject{
		Name:        "Xalan-1725",
		Orig:        xalan1725Orig,
		New:         xalan1725New,
		CorrectArgs: []string{correctSheet, "XYZDOC"},
		RegrArgs:    []string{regrSheet, "XYZDOC"},
		Sites:       []string{"translateElement", "Translet"},
	}
}
