// Package subjects provides the benchmark programs of the evaluation
// (§5), written in the mini-Java language: the motivating example
// (MYFACES-1130), the four real-life case studies (Daikon, Xalan-1725,
// Xalan-1802, Derby-1633), and a parameterizable Rhino-like interpreter
// subject used with the injection framework for the quantitative
// assessment (Fig. 14).
//
// Each case-study subject is engineered to reproduce the defining
// property of the original bug — see DESIGN.md's substitution table —
// rather than its code base: the analysis consumes traces, and the trace
// shapes (cause/effect separation, code churn, dynamic code generation,
// multithreading, error during query compilation) are what matter.
package subjects

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

// Subject is one benchmark program pair with its two test inputs.
type Subject struct {
	Name string
	// Orig and New are the source texts of the two program versions.
	Orig, New string
	// CorrectArgs is the similar, non-regressing test case; RegrArgs is
	// the regressing one.
	CorrectArgs []string
	RegrArgs    []string
	// Sites are ground-truth markers (method/class names) containing the
	// regression cause, used to score false positives/negatives.
	Sites []string
	// RemovalMode selects the (A−B)−C analysis variant.
	RemovalMode bool
	// ExpectAbort is set when the regressing run of the new version is
	// expected to fail with an error (the Derby case).
	ExpectAbort bool
	// MaxSteps overrides the interpreter step budget (0 = default).
	MaxSteps int
}

// LOC returns the line count of the new version (the "LOC" column
// analogue of Table 1).
func (s Subject) LOC() int { return strings.Count(s.New, "\n") + 1 }

// Traces holds the four executions of the analysis protocol.
type Traces struct {
	OrigCorrect, NewCorrect *trace.Trace
	OrigRegr, NewRegr       *trace.Trace
	Outputs                 map[string]string
}

// Run executes all four version × test-case combinations and asserts the
// regression is real: correct-version outputs must agree in behaviour
// while the regressing input must expose a divergence on the new version.
func (s Subject) Run() (*Traces, error) {
	origP, err := lang.Parse(s.Orig)
	if err != nil {
		return nil, fmt.Errorf("subject %s: orig: %w", s.Name, err)
	}
	newP, err := lang.Parse(s.New)
	if err != nil {
		return nil, fmt.Errorf("subject %s: new: %w", s.Name, err)
	}
	tr := &Traces{Outputs: map[string]string{}}
	run := func(p *lang.Program, args []string, name string, allowAbort bool) (*trace.Trace, error) {
		res, err := interp.Run(p, interp.Options{
			Args: args, TraceName: name, MaxSteps: s.MaxSteps,
		})
		if err != nil {
			return nil, fmt.Errorf("subject %s: %s: %w", s.Name, name, err)
		}
		out := res.Output
		if res.Err != nil {
			if !allowAbort {
				return nil, fmt.Errorf("subject %s: %s: %v", s.Name, name, res.Err)
			}
			out += "ERROR: " + res.Err.Msg + "\n"
		}
		tr.Outputs[name] = out
		return res.Trace, nil
	}
	if tr.OrigCorrect, err = run(origP, s.CorrectArgs, "orig-correct", false); err != nil {
		return nil, err
	}
	if tr.NewCorrect, err = run(newP, s.CorrectArgs, "new-correct", false); err != nil {
		return nil, err
	}
	if tr.OrigRegr, err = run(origP, s.RegrArgs, "orig-regr", false); err != nil {
		return nil, err
	}
	if tr.NewRegr, err = run(newP, s.RegrArgs, "new-regr", s.ExpectAbort); err != nil {
		return nil, err
	}
	if tr.Outputs["orig-regr"] == tr.Outputs["new-regr"] {
		return nil, fmt.Errorf("subject %s: regressing input does not change behaviour", s.Name)
	}
	return tr, nil
}

// All returns every case-study subject.
func All() []Subject {
	return []Subject{MyFaces(), Daikon(), Xalan1725(), Xalan1802(), Derby1633()}
}
