package subjects

import (
	"fmt"
	"math/rand"
	"strings"
)

// Rhino models the iBUGS Rhino dataset subject (§5.1): Mozilla Rhino is a
// JavaScript engine in Java that compiles scripts to an intermediate form
// and interprets it. Our subject is a script interpreter written in the
// mini language: a scanner, a compiler from statements to an op-list
// intermediate form, an operand-stack machine interpreting that form, and
// an environment of variables. Regressions for the Fig. 14 experiments
// are injected into this program with the inject package and validated
// against generated scripts.
//
// Script grammar (statements separated by ';'):
//   let:<v>:<rpn>   assign variable v
//   out:<rpn>       print expression value
// where <rpn> is a space-separated reverse-polish expression over integer
// literals, single-letter variables, and the operators + - * / %.

const rhinoSrc = `
opaque class Log {
  Int count;
  void addMsg(String m) { this.count = this.count + 1; return; }
}

class Scanner {
  Int pos;
  Scanner() { super(); this.pos = 0; }
  String next(String src, String sep) {
    let n = src.length();
    if (this.pos >= n) { return ""; }
    let start = this.pos;
    let i = this.pos;
    let stop = false;
    while (i < n && !stop) {
      if (src.substring(i, i + 1).equals(sep)) { stop = true; } else { i = i + 1; }
    }
    this.pos = i + 1;
    return src.substring(start, i);
  }
}

// Op is one instruction of the intermediate form.
class Op {
  Int kind;     // 0 push literal, 1 load var, 2 arithmetic, 3 store, 4 print
  Int literal;
  String name;  // variable name or operator symbol
  Op next;
  Op(Int kind, Int literal, String name) {
    super();
    this.kind = kind;
    this.literal = literal;
    this.name = name;
  }
}

class OpList {
  Op head;
  Op tail;
  Int size;
  void add(Op op) {
    if (this.tail == null) {
      this.head = op;
    } else {
      let t = this.tail;
      t.next = op;
    }
    this.tail = op;
    this.size = this.size + 1;
    return;
  }
}

// Compiler translates one statement into ops appended to an OpList.
class Compiler {
  Log log;
  Int units;
  Compiler(Log log) { super(); this.log = log; }
  Bool isDigit(String tok) {
    let c = tok.charAt(0);
    return c >= 48 && c <= 57;
  }
  void compileExpr(String rpn, OpList out) {
    let sc = new Scanner();
    let tok = sc.next(rpn, " ");
    while (!tok.equals("")) {
      if (this.isDigit(tok)) {
        out.add(new Op(0, Sys.parseInt(tok), ""));
      } else {
        if (tok.length() == 1 && !this.isOperator(tok)) {
          out.add(new Op(1, 0, tok));
        } else {
          out.add(new Op(2, 0, tok));
        }
      }
      tok = sc.next(rpn, " ");
    }
    return;
  }
  Bool isOperator(String tok) {
    if (tok.equals("+")) { return true; }
    if (tok.equals("-")) { return true; }
    if (tok.equals("*")) { return true; }
    if (tok.equals("/")) { return true; }
    if (tok.equals("%")) { return true; }
    return false;
  }
  void compileStmt(String stmt, OpList out) {
    this.units = this.units + 1;
    if (stmt.startsWith("let:")) {
      let rest = stmt.substring(4, stmt.length());
      let sep = rest.indexOf(":");
      let v = rest.substring(0, sep);
      this.compileExpr(rest.substring(sep + 1, rest.length()), out);
      out.add(new Op(3, 0, v));
      return;
    }
    if (stmt.startsWith("out:")) {
      this.compileExpr(stmt.substring(4, stmt.length()), out);
      out.add(new Op(4, 0, ""));
      return;
    }
    return;
  }
}

class Cell {
  Int value;
  Cell below;
  Cell(Int v, Cell below) { super(); this.value = v; this.below = below; }
}

class Stack {
  Cell top;
  Int depth;
  void push(Int v) {
    this.top = new Cell(v, this.top);
    this.depth = this.depth + 1;
    return;
  }
  Int pop() {
    let t = this.top;
    if (t == null) {
      Sys.abort("stack underflow");
    }
    this.top = t.below;
    this.depth = this.depth - 1;
    return t.value;
  }
}

class Var {
  String name;
  Int value;
  Var next;
  Var(String n, Int v, Var next) { super(); this.name = n; this.value = v; this.next = next; }
}

class Env {
  Var head;
  void store(String name, Int v) {
    let cur = this.head;
    while (cur != null) {
      if (cur.name.equals(name)) {
        cur.value = v;
        return;
      }
      cur = cur.next;
    }
    this.head = new Var(name, v, this.head);
    return;
  }
  Int load(String name) {
    let cur = this.head;
    while (cur != null) {
      if (cur.name.equals(name)) { return cur.value; }
      cur = cur.next;
    }
    return 0;
  }
}

// Machine interprets the intermediate form on an operand stack.
class Machine {
  Env env;
  Stack stack;
  Log log;
  Machine(Log log) {
    super();
    this.log = log;
    this.env = new Env();
    this.stack = new Stack();
  }
  Int arith(String sym, Int a, Int b) {
    if (sym.equals("+")) { return a + b; }
    if (sym.equals("-")) { return a - b; }
    if (sym.equals("*")) { return a * b; }
    if (sym.equals("/")) {
      if (b == 0) { return 0; }
      return a / b;
    }
    if (b == 0) { return 0; }
    return a % b;
  }
  void run(OpList ops) {
    let op = ops.head;
    while (op != null) {
      let st = this.stack;
      if (op.kind == 0) { st.push(op.literal); }
      if (op.kind == 1) {
        let e = this.env;
        st.push(e.load(op.name));
      }
      if (op.kind == 2) {
        let b = st.pop();
        let a = st.pop();
        st.push(this.arith(op.name, a, b));
      }
      if (op.kind == 3) {
        let e2 = this.env;
        e2.store(op.name, st.pop());
      }
      if (op.kind == 4) {
        Sys.print(st.pop());
      }
      op = op.next;
    }
    return;
  }
}

class Main {
  void main() {
    let log = new Log();
    let compiler = new Compiler(log);
    let machine = new Machine(log);
    let sc = new Scanner();
    let script = Sys.arg(0);
    let stmt = sc.next(script, ";");
    while (!stmt.equals("")) {
      let ops = new OpList();
      compiler.compileStmt(stmt, ops);
      log.addMsg("stmt compiled");
      machine.run(ops);
      stmt = sc.next(script, ";");
    }
    Sys.print("done " + compiler.units);
  }
}
`

// RhinoSource returns the interpreter's source text.
func RhinoSource() string { return rhinoSrc }

// GenScript deterministically generates a script with about n statements:
// assignments building up variable state and prints observing it. Larger
// n gives proportionally longer traces.
func GenScript(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	vars := []string{"a", "b", "c", "d", "e"}
	ops := []string{"+", "-", "*", "/", "%"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := vars[rng.Intn(len(vars))]
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "let:%s:%d %d %s;", v, rng.Intn(50), 1+rng.Intn(20), ops[rng.Intn(len(ops))])
		case 1:
			w := vars[rng.Intn(len(vars))]
			fmt.Fprintf(&b, "let:%s:%s %d %s;", v, w, 1+rng.Intn(9), ops[rng.Intn(3)])
		default:
			w := vars[rng.Intn(len(vars))]
			fmt.Fprintf(&b, "out:%s %s %s;", v, w, ops[rng.Intn(3)])
		}
	}
	return b.String()
}
