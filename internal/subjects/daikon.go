package subjects

// Daikon reproduces the regression studied in the JUnit/CIA evaluation
// [17]: Daikon's daikon.diff.XorVisitor changed the predicates of its
// shouldAddInv1 and shouldAddInv2 methods, breaking the outdated testXor
// test case. The subject models Daikon's diff visitor architecture: two
// invariant sets are traversed pairwise and a visitor decides which
// invariants from each side survive into the xor result. The new version
// changes shouldAddInv2 (the regression: invariants with matching
// variables are no longer excluded when their sample counts differ) and
// shouldAddInv1 in a compatible way, alongside unrelated refactoring of
// the traversal.

const daikonOrig = `
class Invariant {
  String varName;
  Int samples;
  Bool justified;
  Invariant(String v, Int s, Bool j) {
    super();
    this.varName = v;
    this.samples = s;
    this.justified = j;
  }
}

class InvSet {
  Invariant i0;
  Invariant i1;
  Invariant i2;
  Invariant i3;
  Int size;
  InvSet() {
    super();
    this.size = 0;
  }
  void add(Invariant inv) {
    if (this.size == 0) { this.i0 = inv; }
    if (this.size == 1) { this.i1 = inv; }
    if (this.size == 2) { this.i2 = inv; }
    if (this.size == 3) { this.i3 = inv; }
    this.size = this.size + 1;
    return;
  }
  Invariant get(Int k) {
    if (k == 0) { return this.i0; }
    if (k == 1) { return this.i1; }
    if (k == 2) { return this.i2; }
    return this.i3;
  }
}

class XorVisitor {
  Int added1;
  Int added2;
  Bool shouldAddInv1(Invariant inv1, Invariant inv2) {
    if (inv2 == null) { return inv1.justified; }
    if (inv1.varName.equals(inv2.varName)) { return false; }
    return inv1.justified;
  }
  Bool shouldAddInv2(Invariant inv2, Invariant inv1) {
    if (inv1 == null) { return inv2.justified; }
    if (inv2.varName.equals(inv1.varName)) { return false; }
    return inv2.justified;
  }
  void visit(InvSet s1, InvSet s2, InvSet result) {
    let i = 0;
    while (i < s1.size) {
      let a = s1.get(i);
      let match = this.findMatch(s2, a.varName);
      if (this.shouldAddInv1(a, match)) {
        result.add(a);
        this.added1 = this.added1 + 1;
      }
      i = i + 1;
    }
    let j = 0;
    while (j < s2.size) {
      let b = s2.get(j);
      let match2 = this.findMatch(s1, b.varName);
      if (this.shouldAddInv2(b, match2)) {
        result.add(b);
        this.added2 = this.added2 + 1;
      }
      j = j + 1;
    }
    return;
  }
  Invariant findMatch(InvSet s, String name) {
    let k = 0;
    while (k < s.size) {
      let c = s.get(k);
      if (c.varName.equals(name)) { return c; }
      k = k + 1;
    }
    return null;
  }
}

class Main {
  void runRound(Int r, Int ySamples) {
    let s1 = new InvSet();
    s1.add(new Invariant("x", 10 + r, true));
    s1.add(new Invariant("y", ySamples, true));
    s1.add(new Invariant("z", r % 5, false));
    let s2 = new InvSet();
    s2.add(new Invariant("y", 20, true));
    s2.add(new Invariant("w", 7 + r % 3, true));
    let v = new XorVisitor();
    let result = new InvSet();
    v.visit(s1, s2, result);
    Sys.print("round " + r + " xor size=" + result.size);
    let k = 0;
    while (k < result.size) {
      let inv = result.get(k);
      Sys.print(inv.varName + "/" + inv.samples);
      k = k + 1;
    }
    return;
  }
  void main() {
    let ySamples = Sys.parseInt(Sys.arg(0));
    let r = 0;
    while (r < 40) {
      let ys = 20;
      if (r == 25) { ys = ySamples; }
      this.runRound(r, ys);
      r = r + 1;
    }
  }
}
`

// The new version changes the predicates: invariants whose variables
// match are now included when their sample counts differ — the changed
// methods are exactly shouldAddInv1 and shouldAddInv2 [17]. The traversal
// also gained an unrelated justification recount.
const daikonNew = `
class Invariant {
  String varName;
  Int samples;
  Bool justified;
  Invariant(String v, Int s, Bool j) {
    super();
    this.varName = v;
    this.samples = s;
    this.justified = j;
  }
}

class InvSet {
  Invariant i0;
  Invariant i1;
  Invariant i2;
  Invariant i3;
  Int size;
  InvSet() {
    super();
    this.size = 0;
  }
  void add(Invariant inv) {
    if (this.size == 0) { this.i0 = inv; }
    if (this.size == 1) { this.i1 = inv; }
    if (this.size == 2) { this.i2 = inv; }
    if (this.size == 3) { this.i3 = inv; }
    this.size = this.size + 1;
    return;
  }
  Invariant get(Int k) {
    if (k == 0) { return this.i0; }
    if (k == 1) { return this.i1; }
    if (k == 2) { return this.i2; }
    return this.i3;
  }
}

class XorVisitor {
  Int added1;
  Int added2;
  Int recounted;
  Bool shouldAddInv1(Invariant inv1, Invariant inv2) {
    if (inv2 == null) { return inv1.justified; }
    if (inv1.varName.equals(inv2.varName)) {
      if (inv1.samples == inv2.samples) { return false; }
      return inv1.justified;
    }
    return inv1.justified;
  }
  Bool shouldAddInv2(Invariant inv2, Invariant inv1) {
    if (inv1 == null) { return inv2.justified; }
    if (inv2.varName.equals(inv1.varName)) {
      if (inv2.samples == inv1.samples) { return false; }
      return inv2.justified;
    }
    return inv2.justified;
  }
  void recount(InvSet s) {
    let k = 0;
    while (k < s.size) {
      let c = s.get(k);
      if (c.justified) { this.recounted = this.recounted + 1; }
      k = k + 1;
    }
    return;
  }
  void visit(InvSet s1, InvSet s2, InvSet result) {
    this.recount(s1);
    this.recount(s2);
    let i = 0;
    while (i < s1.size) {
      let a = s1.get(i);
      let match = this.findMatch(s2, a.varName);
      if (this.shouldAddInv1(a, match)) {
        result.add(a);
        this.added1 = this.added1 + 1;
      }
      i = i + 1;
    }
    let j = 0;
    while (j < s2.size) {
      let b = s2.get(j);
      let match2 = this.findMatch(s1, b.varName);
      if (this.shouldAddInv2(b, match2)) {
        result.add(b);
        this.added2 = this.added2 + 1;
      }
      j = j + 1;
    }
    return;
  }
  Invariant findMatch(InvSet s, String name) {
    let k = 0;
    while (k < s.size) {
      let c = s.get(k);
      if (c.varName.equals(name)) { return c; }
      k = k + 1;
    }
    return null;
  }
}

class Main {
  void runRound(Int r, Int ySamples) {
    let s1 = new InvSet();
    s1.add(new Invariant("x", 10 + r, true));
    s1.add(new Invariant("y", ySamples, true));
    s1.add(new Invariant("z", r % 5, false));
    let s2 = new InvSet();
    s2.add(new Invariant("y", 20, true));
    s2.add(new Invariant("w", 7 + r % 3, true));
    let v = new XorVisitor();
    let result = new InvSet();
    v.visit(s1, s2, result);
    Sys.print("round " + r + " xor size=" + result.size);
    let k = 0;
    while (k < result.size) {
      let inv = result.get(k);
      Sys.print(inv.varName + "/" + inv.samples);
      k = k + 1;
    }
    return;
  }
  void main() {
    let ySamples = Sys.parseInt(Sys.arg(0));
    let r = 0;
    while (r < 40) {
      let ys = 20;
      if (r == 25) { ys = ySamples; }
      this.runRound(r, ys);
      r = r + 1;
    }
  }
}
`

// Daikon returns the XorVisitor subject. With equal sample counts (the
// correct test, arg 20 makes both y invariants carry 20 samples) old and
// new predicates agree; with differing counts (arg 11) the new predicates
// include the matched invariants — the testXor regression.
func Daikon() Subject {
	return Subject{
		Name:        "Daikon",
		Orig:        daikonOrig,
		New:         daikonNew,
		CorrectArgs: []string{"20"},
		RegrArgs:    []string{"11"},
		// The changed predicates are the causes; the extra result-set
		// population inside visit is the known direct effect (the paper's
		// third identified sequence was likewise "related to the effect
		// of the regression but not the causes").
		Sites: []string{"shouldAddInv1", "shouldAddInv2", "XorVisitor.visit"},
	}
}
