package subjects

// Derby1633 reproduces DERBY-1633: a regression from 10.1.2.1 to 10.1.3.1
// in which new query optimizations introduced in the later version hit an
// incomplete corner case for queries combining predicates with IN
// subqueries — the new version throws an error *during query compilation*,
// whereas the old version executed the query. The subject is
// multithreaded (background lock-manager and statistics threads run
// alongside query processing), producing multiple thread views; the
// regression differences are confined to the query-compilation thread.
//
// Query language (one query per ';'):
//   select:<col>:<val>        scan rows where col == val
//   selectin:<col>:<v1>,<v2>  scan rows where col IN (subquery yielding v1, v2)

const derbyShared = `
opaque class Log {
  Int count;
  void addMsg(String m) { this.count = this.count + 1; return; }
}

class Row {
  Int a;
  Int b;
  Row next;
  Row(Int a, Int b, Row next) { super(); this.a = a; this.b = b; this.next = next; }
}

class Table {
  Row head;
  Int rows;
  void insert(Int a, Int b) {
    this.head = new Row(a, b, this.head);
    this.rows = this.rows + 1;
    return;
  }
  Int col(Row r, String name) {
    if (name.equals("a")) { return r.a; }
    return r.b;
  }
}

class LockManager {
  Int beats;
  void heartbeat(Int n) {
    let i = 0;
    while (i < n) {
      this.beats = this.beats + 1;
      i = i + 1;
    }
    return;
  }
}

class StatsCollector {
  Int samples;
  void collect(Table t, Int n) {
    let i = 0;
    while (i < n) {
      this.samples = this.samples + t.rows;
      i = i + 1;
    }
    return;
  }
}

class QueryReader {
  Int pos;
  QueryReader() { super(); this.pos = 0; }
  String next(String qs) {
    let n = qs.length();
    if (this.pos >= n) { return ""; }
    let start = this.pos;
    let i = this.pos;
    let stop = false;
    while (i < n && !stop) {
      if (qs.substring(i, i + 1).equals(";")) { stop = true; } else { i = i + 1; }
    }
    this.pos = i + 1;
    return qs.substring(start, i);
  }
}
`

const derbyExec = `
class Executor {
  Table table;
  Log log;
  Executor(Table t, Log log) { super(); this.table = t; this.log = log; }
  Int run(Plan plan) {
    let hits = 0;
    let r = this.table.head;
    while (r != null) {
      let v = this.table.col(r, plan.column);
      if (plan.matches(v)) { hits = hits + 1; }
      r = r.next;
    }
    return hits;
  }
}

class Main {
  void setup(Table t) {
    let i = 0;
    while (i < 200) {
      t.insert(i % 7, i % 11);
      i = i + 1;
    }
    return;
  }
  void main() {
    let log = new Log();
    let table = new Table();
    this.setup(table);
    let locks = new LockManager();
    let stats = new StatsCollector();
    spawn { locks.heartbeat(500); }
    spawn { stats.collect(table, 300); }
    let compiler = new QueryCompiler(log);
    let exec = new Executor(table, log);
    let reader = new QueryReader();
    let qs = Sys.arg(0);
    let q = reader.next(qs);
    while (!q.equals("")) {
      log.addMsg("compile query");
      let plan = compiler.compile(q);
      let hits = exec.run(plan);
      Sys.print(q + " -> " + hits);
      q = reader.next(qs);
    }
    Sys.print("locks=" + locks.beats);
  }
}
`

const derby1633Orig = derbyShared + `
class Plan {
  String column;
  Int value;
  Int value2;
  Bool isIn;
  Plan(String col, Int v, Int v2, Bool isIn) {
    super();
    this.column = col;
    this.value = v;
    this.value2 = v2;
    this.isIn = isIn;
  }
  Bool matches(Int v) {
    if (this.isIn) {
      return v == this.value || v == this.value2;
    }
    return v == this.value;
  }
}

class QueryCompiler {
  Log log;
  Int compiled;
  QueryCompiler(Log log) { super(); this.log = log; this.compiled = 0; }
  Plan compile(String q) {
    this.compiled = this.compiled + 1;
    if (q.startsWith("select:")) {
      let rest = q.substring(7, q.length());
      let sep = rest.indexOf(":");
      let col = rest.substring(0, sep);
      let v = Sys.parseInt(rest.substring(sep + 1, rest.length()));
      return new Plan(col, v, v, false);
    }
    if (q.startsWith("selectin:")) {
      let rest = q.substring(9, q.length());
      let sep = rest.indexOf(":");
      let col = rest.substring(0, sep);
      let vals = rest.substring(sep + 1, rest.length());
      let comma = vals.indexOf(",");
      let v1 = Sys.parseInt(vals.substring(0, comma));
      let v2 = Sys.parseInt(vals.substring(comma + 1, vals.length()));
      return new Plan(col, v1, v2, true);
    }
    return new Plan("a", 0 - 1, 0 - 1, false);
  }
}
` + derbyExec

const derby1633New = derbyShared + `
class Plan {
  String column;
  Int value;
  Int value2;
  Bool isIn;
  Plan(String col, Int v, Int v2, Bool isIn) {
    super();
    this.column = col;
    this.value = v;
    this.value2 = v2;
    this.isIn = isIn;
  }
  Bool matches(Int v) {
    if (this.isIn) {
      return v == this.value || v == this.value2;
    }
    return v == this.value;
  }
}

class SubqueryOptimizer {
  Log log;
  Int rewrites;
  SubqueryOptimizer(Log log) { super(); this.log = log; this.rewrites = 0; }
  // New in this version: materialize IN subqueries. The corner case where
  // the subquery values span different residue classes is unimplemented
  // and aborts query compilation — the DERBY-1633 behaviour.
  Plan rewrite(String col, Int v1, Int v2) {
    this.rewrites = this.rewrites + 1;
    if (v1 % 2 != v2 % 2) {
      Sys.abort("subquery materialization: unhandled predicate combination");
    }
    return new Plan(col, v1, v2, true);
  }
}

class QueryCompiler {
  Log log;
  Int compiled;
  SubqueryOptimizer opt;
  QueryCompiler(Log log) {
    super();
    this.log = log;
    this.compiled = 0;
    this.opt = new SubqueryOptimizer(log);
  }
  Plan compile(String q) {
    this.compiled = this.compiled + 1;
    if (q.startsWith("select:")) {
      let rest = q.substring(7, q.length());
      let sep = rest.indexOf(":");
      let col = rest.substring(0, sep);
      let v = Sys.parseInt(rest.substring(sep + 1, rest.length()));
      return new Plan(col, v, v, false);
    }
    if (q.startsWith("selectin:")) {
      let rest = q.substring(9, q.length());
      let sep = rest.indexOf(":");
      let col = rest.substring(0, sep);
      let vals = rest.substring(sep + 1, rest.length());
      let comma = vals.indexOf(",");
      let v1 = Sys.parseInt(vals.substring(0, comma));
      let v2 = Sys.parseInt(vals.substring(comma + 1, vals.length()));
      let o = this.opt;
      return o.rewrite(col, v1, v2);
    }
    return new Plan("a", 0 - 1, 0 - 1, false);
  }
}
` + derbyExec

// Derby1633 returns the multithreaded database subject. The regressing
// query mixes subquery values of different parities, hitting the new
// optimizer's unimplemented corner case (error during compilation); the
// similar non-regressing query keeps both values in the same residue
// class, which both versions execute identically.
func Derby1633() Subject {
	prefix := "select:a:3;select:b:5;select:a:1;select:b:2;"
	return Subject{
		Name:        "Derby-1633",
		Orig:        derby1633Orig,
		New:         derby1633New,
		CorrectArgs: []string{prefix + "selectin:a:2,4;select:a:1;"},
		RegrArgs:    []string{prefix + "selectin:a:2,5;select:a:1;"},
		Sites:       []string{"SubqueryOptimizer", "rewrite"},
		ExpectAbort: true,
	}
}
