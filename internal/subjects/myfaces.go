package subjects

// MyFaces reproduces the motivating example (Fig. 1, MYFACES-1130): the
// framework converts non-7-bit-safe characters of a text/html response
// into HTML numeric entities for characters outside [32..127]. The new
// version extracts the generic BinaryCharFilter abstraction from
// ServletProcessor and inadvertently supplies the range [1..127], so
// characters 1..31 are no longer converted — but only for text/html
// documents. The new version also carries unrelated evolution (changed
// log messages, an extra validation pass) that the expected-differences
// set must filter out.

const myfacesOrig = `
opaque class Log {
  Int count;
  void addMsg(String msg) {
    this.count = this.count + 1;
    return;
  }
}

class NumericEntityUtil {
  Int minCharRange;
  Int maxCharRange;
  NumericEntityUtil(Int min, Int max) {
    super();
    this.minCharRange = min;
    this.maxCharRange = max;
  }
  Bool needsConvert(Int ch) {
    if (ch < this.minCharRange) { return true; }
    if (ch > this.maxCharRange) { return true; }
    return false;
  }
  String convert(Int ch) {
    return "&#" + ch + ";";
  }
}

class Response {
  String body;
  Response() {
    super();
    this.body = "";
  }
  void append(String s) {
    this.body = this.body + s;
    return;
  }
}

class ServletProcessor {
  Log log;
  NumericEntityUtil binConv;
  Bool filtering;
  ServletProcessor(Log log) {
    super();
    this.log = log;
    this.filtering = false;
  }
  void setRequestType(String type) {
    this.log.addMsg("Handling request type");
    if (type.equals("text/html")) {
      this.binConv = new NumericEntityUtil(32, 127);
      this.filtering = true;
    } else {
      this.filtering = false;
    }
    this.log.addMsg("Set request type");
    return;
  }
  void writeOutput(String doc, Response resp) {
    let i = 0;
    let n = doc.length();
    while (i < n) {
      let ch = doc.charAt(i);
      if (this.filtering) {
        let conv = this.binConv;
        if (conv.needsConvert(ch)) {
          resp.append(conv.convert(ch));
        } else {
          resp.append(doc.substring(i, i + 1));
        }
      } else {
        resp.append(doc.substring(i, i + 1));
      }
      i = i + 1;
    }
    return;
  }
}

class Main {
  void main() {
    let log = new Log();
    let sp = new ServletProcessor(log);
    let resp = new Response();
    log.addMsg("request start");
    sp.setRequestType(Sys.arg(0));
    sp.writeOutput(Sys.arg(1), resp);
    log.addMsg("request end");
    Sys.print(resp.body);
  }
}
`

const myfacesNew = `
opaque class Log {
  Int count;
  void addMsg(String msg) {
    this.count = this.count + 1;
    return;
  }
}

class NumericEntityUtil {
  Int minCharRange;
  Int maxCharRange;
  NumericEntityUtil(Int min, Int max) {
    super();
    this.minCharRange = min;
    this.maxCharRange = max;
  }
  Bool needsConvert(Int ch) {
    if (ch < this.minCharRange) { return true; }
    if (ch > this.maxCharRange) { return true; }
    return false;
  }
  String convert(Int ch) {
    return "&#" + ch + ";";
  }
}

class BinaryCharFilter {
  NumericEntityUtil binConv;
  BinaryCharFilter() {
    super();
    this.binConv = new NumericEntityUtil(1, 127);
  }
  NumericEntityUtil util() {
    return this.binConv;
  }
}

class Response {
  String body;
  Response() {
    super();
    this.body = "";
  }
  void append(String s) {
    this.body = this.body + s;
    return;
  }
}

class ServletProcessor {
  Log log;
  NumericEntityUtil binConv;
  Bool filtering;
  ServletProcessor(Log log) {
    super();
    this.log = log;
    this.filtering = false;
  }
  Bool validateType(String type) {
    if (type.length() < 1) { return false; }
    return true;
  }
  void setRequestType(String type) {
    this.log.addMsg("Handling request type (v2)");
    let valid = this.validateType(type);
    if (type.equals("text/html") && valid) {
      let filter = new BinaryCharFilter();
      this.binConv = filter.util();
      this.filtering = true;
    } else {
      this.filtering = false;
    }
    this.log.addMsg("Set request type (v2)");
    return;
  }
  void writeOutput(String doc, Response resp) {
    let i = 0;
    let n = doc.length();
    while (i < n) {
      let ch = doc.charAt(i);
      if (this.filtering) {
        let conv = this.binConv;
        if (conv.needsConvert(ch)) {
          resp.append(conv.convert(ch));
        } else {
          resp.append(doc.substring(i, i + 1));
        }
      } else {
        resp.append(doc.substring(i, i + 1));
      }
      i = i + 1;
    }
    return;
  }
}

class Main {
  void main() {
    let log = new Log();
    let sp = new ServletProcessor(log);
    let resp = new Response();
    log.addMsg("request start");
    sp.setRequestType(Sys.arg(0));
    sp.writeOutput(Sys.arg(1), resp);
    log.addMsg("request end");
    Sys.print(resp.body);
  }
}
`

// myfacesDoc contains tab and newline characters (codes 9 and 10), which
// are in [1..31]: converted by the original version, passed through by
// the regressing one.
const myfacesDoc = "<html>\n\tHello éworld\n</html>"

// MyFaces returns the motivating-example subject.
func MyFaces() Subject {
	return Subject{
		Name:        "MyFaces-1130",
		Orig:        myfacesOrig,
		New:         myfacesNew,
		CorrectArgs: []string{"text/plain", myfacesDoc},
		RegrArgs:    []string{"text/html", myfacesDoc},
		// The causes (wrongly-ranged NumericEntityUtil built by
		// BinaryCharFilter) plus the known effect site (conversion during
		// writeOutput) — the paper counts effect sequences as correctly
		// identified, not as false positives.
		Sites: []string{"BinaryCharFilter", "NumericEntityUtil", "writeOutput"},
	}
}
