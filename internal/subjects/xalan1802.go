package subjects

// Xalan1802 reproduces XALANJ-1802: a regression caused not by a small
// incremental change but by a corner-case bug inside a completely
// re-architected namespace-handling module, amid heavy general code
// churn (79K changed lines over 12 months in the original). The subject's
// new version rewrites the namespace module wholesale — classes and
// methods renamed, data structure replaced — exercising the relaxed
// (context-sensitive) view correlation of §5. The corner case: when a
// nested element redeclares (shadows) a prefix, popping the inner scope
// loses the outer binding, so later references resolve to nothing.
//
// The document language: ';'-separated ops —
//   open:<elem>       open element
//   decl:<pfx>:<uri>  declare prefix in current scope
//   use:<pfx>         emit resolution of prefix
//   close             close element (pop scope)

const xalanDocShared = `
opaque class Log {
  Int count;
  void addMsg(String m) { this.count = this.count + 1; return; }
}

class DocReader {
  Int pos;
  DocReader() { super(); this.pos = 0; }
  String next(String doc) {
    let n = doc.length();
    if (this.pos >= n) { return ""; }
    let start = this.pos;
    let i = this.pos;
    let stop = false;
    while (i < n && !stop) {
      if (doc.substring(i, i + 1).equals(";")) { stop = true; } else { i = i + 1; }
    }
    this.pos = i + 1;
    return doc.substring(start, i);
  }
}
`

const xalan1802Orig = xalanDocShared + `
// Original architecture: a linked stack of bindings, each tagged with the
// depth it was declared at; popping removes only bindings of the closing
// depth, so shadowed outer bindings survive.
class Binding {
  String prefix;
  String uri;
  Int depth;
  Binding next;
  Binding(String p, String u, Int d, Binding nx) {
    super();
    this.prefix = p;
    this.uri = u;
    this.depth = d;
    this.next = nx;
  }
}

class NamespaceSupport {
  Binding head;
  Int depth;
  Log log;
  NamespaceSupport(Log log) { super(); this.log = log; this.depth = 0; }
  void pushContext() {
    this.depth = this.depth + 1;
    return;
  }
  void declarePrefix(String pfx, String uri) {
    this.head = new Binding(pfx, uri, this.depth, this.head);
    return;
  }
  String getURI(String pfx) {
    let b = this.head;
    while (b != null) {
      if (b.prefix.equals(pfx)) { return b.uri; }
      b = b.next;
    }
    return "(undefined)";
  }
  void popContext() {
    let b = this.head;
    let keep = true;
    while (b != null && keep) {
      if (b.depth == this.depth) { b = b.next; } else { keep = false; }
    }
    this.head = b;
    this.depth = this.depth - 1;
    return;
  }
}

class Processor {
  NamespaceSupport ns;
  Log log;
  Processor(Log log) {
    super();
    this.log = log;
    this.ns = new NamespaceSupport(log);
  }
  String handle(String op) {
    if (op.startsWith("open:")) {
      this.ns.pushContext();
      return "<" + op.substring(5, op.length()) + ">";
    }
    if (op.startsWith("decl:")) {
      let rest = op.substring(5, op.length());
      let sep = rest.indexOf(":");
      this.ns.declarePrefix(rest.substring(0, sep), rest.substring(sep + 1, rest.length()));
      return "";
    }
    if (op.startsWith("use:")) {
      let pfx = op.substring(4, op.length());
      return "[" + pfx + "=" + this.ns.getURI(pfx) + "]";
    }
    if (op.equals("close")) {
      this.ns.popContext();
      return "</>";
    }
    return "";
  }
}

class Main {
  void main() {
    let log = new Log();
    let p = new Processor(log);
    let reader = new DocReader();
    let doc = Sys.arg(0);
    let out = "";
    let op = reader.next(doc);
    while (!op.equals("")) {
      out = out + p.handle(op);
      log.addMsg("op handled");
      op = reader.next(doc);
    }
    Sys.print(out);
  }
}
`

const xalan1802New = xalanDocShared + `
// Re-architected module: scoped contexts chained parent-wise, each with a
// small fixed-capacity table. REGRESSION (corner case): NSResolver.leave
// discards every binding for prefixes the inner scope declared — including
// shadowed outer bindings — because undeclare removes from the *parent*
// chain as well.
class NSEntry {
  String pfx;
  String uri;
  NSEntry(String p, String u) { super(); this.pfx = p; this.uri = u; }
}

class NSContext {
  NSEntry e0;
  NSEntry e1;
  NSEntry e2;
  Int size;
  NSContext parent;
  NSContext(NSContext parent) { super(); this.parent = parent; this.size = 0; }
  void put(String pfx, String uri) {
    let e = new NSEntry(pfx, uri);
    if (this.size == 0) { this.e0 = e; }
    if (this.size == 1) { this.e1 = e; }
    if (this.size == 2) { this.e2 = e; }
    this.size = this.size + 1;
    return;
  }
  NSEntry at(Int k) {
    if (k == 0) { return this.e0; }
    if (k == 1) { return this.e1; }
    return this.e2;
  }
  String lookup(String pfx) {
    let k = 0;
    while (k < this.size) {
      let e = this.at(k);
      if (e.pfx.equals(pfx)) { return e.uri; }
      k = k + 1;
    }
    if (this.parent != null) {
      let p = this.parent;
      return p.lookup(pfx);
    }
    return "(undefined)";
  }
  void erase(String pfx) {
    let k = 0;
    while (k < this.size) {
      let e = this.at(k);
      if (e.pfx.equals(pfx)) { e.uri = "(undefined)"; }
      k = k + 1;
    }
    if (this.parent != null) {
      let p = this.parent;
      p.erase(pfx);
    }
    return;
  }
}

class NSResolver {
  NSContext current;
  Log log;
  NSResolver(Log log) { super(); this.log = log; this.current = new NSContext(null); }
  void enter() {
    this.current = new NSContext(this.current);
    return;
  }
  void declare(String pfx, String uri) {
    let c = this.current;
    c.put(pfx, uri);
    return;
  }
  String resolve(String pfx) {
    let c = this.current;
    return c.lookup(pfx);
  }
  void leave() {
    let c = this.current;
    // Corner case bug: erase propagates into parent contexts, wiping
    // shadowed outer declarations of the same prefix.
    let k = 0;
    while (k < c.size) {
      let e = c.at(k);
      let parent = c.parent;
      if (parent != null) { parent.erase(e.pfx); }
      k = k + 1;
    }
    this.current = c.parent;
    return;
  }
}

class Processor {
  NSResolver ns;
  Log log;
  Processor(Log log) {
    super();
    this.log = log;
    this.ns = new NSResolver(log);
  }
  String handle(String op) {
    if (op.startsWith("open:")) {
      this.ns.enter();
      return "<" + op.substring(5, op.length()) + ">";
    }
    if (op.startsWith("decl:")) {
      let rest = op.substring(5, op.length());
      let sep = rest.indexOf(":");
      this.ns.declare(rest.substring(0, sep), rest.substring(sep + 1, rest.length()));
      return "";
    }
    if (op.startsWith("use:")) {
      let pfx = op.substring(4, op.length());
      return "[" + pfx + "=" + this.ns.resolve(pfx) + "]";
    }
    if (op.equals("close")) {
      this.ns.leave();
      return "</>";
    }
    return "";
  }
}

class Main {
  void main() {
    let log = new Log();
    let p = new Processor(log);
    let reader = new DocReader();
    let doc = Sys.arg(0);
    let out = "";
    let op = reader.next(doc);
    while (!op.equals("")) {
      out = out + p.handle(op);
      log.addMsg("op handled");
      op = reader.next(doc);
    }
    Sys.print(out);
  }
}
`

// Xalan1802 returns the re-architecture subject. The regressing document
// shadows prefix p in a nested element and uses it again after the inner
// element closes; the similar non-regressing document uses a different
// inner prefix (no shadowing), so both architectures agree on it.
func Xalan1802() Subject {
	common := "open:root;decl:p:uriA;use:p;open:head;decl:q:uriH;use:q;close;use:p;"
	regr := common + "open:body;decl:p:uriB;use:p;close;use:p;close;"
	correct := common + "open:body;decl:r:uriB;use:r;close;use:p;close;"
	return Subject{
		Name:        "Xalan-1802",
		Orig:        xalan1802Orig,
		New:         xalan1802New,
		CorrectArgs: []string{correct},
		RegrArgs:    []string{regr},
		Sites:       []string{"leave", "erase"},
	}
}
