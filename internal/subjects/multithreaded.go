package subjects

import (
	"fmt"
	"strings"
)

// MultithreadedSource builds the parallel-diff subject: a program whose
// main thread spawns `workers` Worker threads, each producing a long,
// independently diffable event stream of `iters` iterations. bias is a
// program expression over the loop variable i (e.g. "0" for the clean
// run, "1" to perturb every 17th iteration via the i%17/16 factor in the
// loop body), scattering divergences across all threads — the workload
// the per-thread-pair parallel differ decomposes.
func MultithreadedSource(workers, iters int, bias string) string {
	var sb strings.Builder
	sb.WriteString(`
class Worker {
  Int id;
  Int acc;
  Worker(Int id) { super(); this.id = id; this.acc = 0; }
  void work(Int bias) {
    let i = 0;
    while (i < ` + fmt.Sprint(iters) + `) {
      this.acc = this.acc + this.id * 31 + i + i % 17 / 16 * bias;
      Sys.print(this.acc % 1000);
      i = i + 1;
    }
  }
}
class Main {
  void main() {
`)
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "    let w%d = new Worker(%d);\n", w, w+1)
		fmt.Fprintf(&sb, "    spawn { w%d.work(%s); }\n", w, bias)
	}
	sb.WriteString(`    Sys.print("main done");
  }
}`)
	return sb.String()
}
