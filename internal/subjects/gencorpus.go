package subjects

import (
	"fmt"

	"repro/internal/trace"
)

// GenCorpusTrace synthesizes one member of a deterministic trace corpus
// for corpus-scale tests and benchmarks: traces of the same family
// share their method/class vocabulary and all of their variant-stable
// entries, while each variant perturbs the values of a ~10% slice of
// the entries — so same-family variants are semantically near (small
// exact diffs), different families are far (disjoint vocabularies), and
// the whole corpus is reproducible from (family, variant, n) alone.
func GenCorpusTrace(family, variant, n int) *trace.Trace {
	t := trace.New(fmt.Sprintf("fam%02d-var%02d", family, variant))
	for i := 0; i < n; i++ {
		class := fmt.Sprintf("Fam%dNode", family)
		method := fmt.Sprintf("Fam%d.op%d/1", family, (i+family)%6)
		obj := trace.Repr{Loc: trace.Loc(i%13 + 1), Class: class, Seq: i%13 + 1}
		// Variant-sensitive entries carry the variant in their argument
		// value; everything else is a pure function of (family, i).
		v := family*1_000_000 + i
		if (i*31+7)%100 < 10 {
			v += (variant + 1) * 10_000
		}
		val := trace.Repr{Class: "Int", Hash: uint64(v), Str: fmt.Sprintf("%d", v)}
		t.Append(trace.ThreadID(i%3+1), method, obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: method, Args: []trace.Repr{val}})
	}
	t.EnsureSyms()
	return t
}
