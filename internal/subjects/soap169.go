package subjects

// Soap169 models the regression class the paper's footnote 5 points to
// (SOAP-169, cited next to MYFACES-1130 as "a pattern for an entire class
// of regressions"): a piece of code incorrectly alters dynamic state early
// in the execution — here, an RPC router's default type-mapping registry —
// and the error manifests much later, only for certain inputs (calls whose
// type falls back to the default mapping). The causal distance between
// the registry initialization and the failing serialization is the whole
// request-dispatch pipeline.

const soapShared = `
opaque class Log {
  Int count;
  void addMsg(String m) { this.count = this.count + 1; return; }
}

class Mapping {
  String typeName;
  String encoder;
  Mapping next;
  Mapping(String t, String e, Mapping next) {
    super();
    this.typeName = t;
    this.encoder = e;
    this.next = next;
  }
}

class Registry {
  Mapping head;
  String fallback;
  void register(String t, String e) {
    this.head = new Mapping(t, e, this.head);
    return;
  }
  String lookup(String t) {
    let m = this.head;
    while (m != null) {
      if (m.typeName.equals(t)) { return m.encoder; }
      m = m.next;
    }
    return this.fallback;
  }
}

class Serializer {
  Registry reg;
  Log log;
  Serializer(Registry reg, Log log) { super(); this.reg = reg; this.log = log; }
  String encode(String typ, String value) {
    let enc = this.reg.lookup(typ);
    if (enc.equals("xsd")) { return "<v>" + value + "</v>"; }
    if (enc.equals("b64")) { return "[" + value.length() + "]"; }
    if (enc.equals("raw")) { return value; }
    return "<?unknown " + typ + "?>";
  }
}

class Router {
  Serializer ser;
  Log log;
  Router(Serializer s, Log log) { super(); this.ser = s; this.log = log; }
  String dispatch(String call) {
    this.log.addMsg("dispatch");
    let sep = call.indexOf(":");
    let typ = call.substring(0, sep);
    let val = call.substring(sep + 1, call.length());
    return this.ser.encode(typ, val);
  }
}

class Main {
  void main() {
    let log = new Log();
    let reg = new Registry();
    let boot = new Bootstrap();
    boot.configure(reg, log);
    let router = new Router(new Serializer(reg, log), log);
    let i = 0;
    let n = Sys.numArgs();
    while (i < n) {
      Sys.print(router.dispatch(Sys.arg(i)));
      i = i + 1;
    }
  }
}
`

const soap169Orig = soapShared + `
class Bootstrap {
  void configure(Registry reg, Log log) {
    log.addMsg("configure");
    reg.register("int", "xsd");
    reg.register("string", "xsd");
    reg.register("bytes", "b64");
    reg.fallback = "raw";
    return;
  }
}
`

// The new version reorganizes bootstrap configuration and loses the
// fallback assignment's value (empty string instead of "raw") — dynamic
// state corrupted at startup, manifesting only for calls whose type has
// no explicit mapping.
const soap169New = soapShared + `
class Bootstrap {
  String defaultEncoding;
  Bootstrap() {
    super();
    this.defaultEncoding = "";
  }
  void configure(Registry reg, Log log) {
    log.addMsg("configure (v2)");
    reg.register("int", "xsd");
    reg.register("string", "xsd");
    reg.register("bytes", "b64");
    reg.fallback = this.defaultEncoding;
    return;
  }
}
`

// Soap169 returns the dynamic-state regression subject. The regressing
// test includes a call with an unmapped type (hits the fallback); the
// similar non-regressing test uses only explicitly mapped types.
func Soap169() Subject {
	return Subject{
		Name:        "SOAP-169",
		Orig:        soap169Orig,
		New:         soap169New,
		CorrectArgs: []string{"int:42", "string:hi", "bytes:abc"},
		RegrArgs:    []string{"int:42", "custom:zzz", "bytes:abc"},
		Sites:       []string{"Bootstrap", "fallback", "encode"},
	}
}
