// Package retry is the shared transient-failure policy of every
// network client in the repo: the capture stream sink and the blob
// storage backends both retry with the same jittered exponential
// backoff, fail fast on the same class of definitive rejections, and
// respect caller cancellation the same way.
//
// The policy is deliberately small: an attempt bound, a base delay
// doubling per attempt, and a uniform jitter over [d/2, 3d/2) so a
// fleet of clients hammering one recovering server does not retry in
// lockstep. Errors are transient by default; wrap an error in
// Permanent to stop the loop immediately (the canonical case is an
// HTTP 4xx — the request can never succeed as sent, so retrying the
// identical bytes is wasted).
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy bounds one retried operation. The zero value selects the
// defaults (4 attempts, 100ms base backoff).
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (default 4).
	Attempts int
	// Base is the backoff before the second attempt; it doubles per
	// attempt and is jittered over [d/2, 3d/2) (default 100ms).
	Base time.Duration
	// Sleep overrides the delay function, for tests. nil sleeps for
	// real, honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// permanentError marks a definitive rejection: Do stops immediately
// and returns the wrapped error.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Do returns the original error
// on the spot instead of burning the remaining attempts. A nil err
// stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do runs op under the policy: transient errors retry with jittered
// exponential backoff until the attempt bound, Permanent-marked errors
// return immediately (unwrapped), and a ctx that ends mid-backoff
// aborts with the context's error. The exhausted-attempts error wraps
// the last transient failure and contains "N attempts failed" for
// callers that surface the bound.
func (p Policy) Do(ctx context.Context, op func() error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if err := p.Sleep(ctx, Jitter(p.Base, attempt)); err != nil {
				return err
			}
		}
		err := op()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
	}
	return fmt.Errorf("retry: %d attempts failed: %w", p.Attempts, lastErr)
}

// Jitter is the shared backoff curve: base·2^(attempt−1), uniformly
// jittered over [d/2, 3d/2).
func Jitter(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 { // overflow or zero base: clamp to something sane
		d = base
		if d <= 0 {
			d = time.Millisecond
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleep waits d or until ctx ends, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
