package retry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestDo tables the retry loop: transient failures burn attempts,
// permanent failures stop on the spot, success stops early.
func TestDo(t *testing.T) {
	errTransient := errors.New("boom")
	errPermanent := errors.New("rejected")
	cases := []struct {
		name      string
		attempts  int
		failures  int  // transient failures before success
		permanent bool // every failure is permanent
		wantCalls int
		wantErr   error // nil = success
		wantMsg   string
	}{
		{name: "clean first try", attempts: 4, wantCalls: 1},
		{name: "recovers after one", attempts: 4, failures: 1, wantCalls: 2},
		{name: "recovers after two", attempts: 4, failures: 2, wantCalls: 3},
		{name: "recovers on last attempt", attempts: 3, failures: 2, wantCalls: 3},
		{name: "exhausts attempts", attempts: 3, failures: 99, wantCalls: 3,
			wantErr: errTransient, wantMsg: "3 attempts failed"},
		{name: "single attempt no backoff", attempts: 1, failures: 99, wantCalls: 1,
			wantErr: errTransient, wantMsg: "1 attempts failed"},
		{name: "permanent fails fast", attempts: 4, failures: 99, permanent: true,
			wantCalls: 1, wantErr: errPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			var slept []time.Duration
			p := Policy{
				Attempts: tc.attempts,
				Base:     time.Millisecond,
				Sleep: func(_ context.Context, d time.Duration) error {
					slept = append(slept, d)
					return nil
				},
			}
			err := p.Do(context.Background(), func() error {
				calls++
				if calls <= tc.failures {
					if tc.permanent {
						return Permanent(errPermanent)
					}
					return errTransient
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Fatalf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if len(slept) != tc.wantCalls-1 {
				t.Fatalf("slept %d times, want %d", len(slept), tc.wantCalls-1)
			}
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want wrapping %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not contain %q", err, tc.wantMsg)
			}
			if tc.permanent && IsPermanent(err) {
				t.Fatalf("Do must unwrap the permanent marker, got %v", err)
			}
		})
	}
}

// TestDoCtxCanceledDuringBackoff proves the sleep honors ctx: a
// context canceled mid-backoff aborts the loop with the ctx error, not
// with the transient error.
func TestDoCtxCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Attempts: 5, Base: time.Hour} // real sleep; must not wait
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func() error {
			calls++
			cancel() // first failure triggers a backoff we then cancel
			return errors.New("transient")
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
		if calls != 1 {
			t.Fatalf("calls = %d, want 1", calls)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not honor cancellation during backoff")
	}
}

// TestPermanentNil keeps Permanent a no-op on nil so call sites can
// wrap unconditionally.
func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
	if IsPermanent(nil) {
		t.Fatal("IsPermanent(nil) must be false")
	}
}

// TestPermanentWrapKeepsErrorsIs proves errors.Is sees through the
// marker, so callers can still classify the underlying failure.
func TestPermanentWrapKeepsErrorsIs(t *testing.T) {
	base := errors.New("not found")
	wrapped := Permanent(fmt.Errorf("lookup: %w", base))
	if !errors.Is(wrapped, base) {
		t.Fatal("errors.Is must see through Permanent")
	}
	if !IsPermanent(wrapped) {
		t.Fatal("IsPermanent must detect the marker")
	}
}

// TestJitterBounds pins the backoff curve: attempt k draws uniformly
// from [d/2, 3d/2) with d = base·2^(k−1).
func TestJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 4; attempt++ {
		d := base << (attempt - 1)
		for i := 0; i < 200; i++ {
			got := Jitter(base, attempt)
			if got < d/2 || got >= d/2+d {
				t.Fatalf("attempt %d: jitter %v outside [%v, %v)", attempt, got, d/2, d/2+d)
			}
		}
	}
}
