package index

import (
	"sort"
	"sync"

	"repro/internal/trace"
)

// Index is the in-memory LSH cluster index over sketches: each trace is
// filed under one bucket per band (Bands buckets total), and traces
// sharing any bucket are similarity candidates. It is maintained on
// Put/Delete by the corpus store and rebuilt (lazily, from persisted
// sketch sidecars) when a store reopens. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	sketches map[trace.Digest]*Sketch
	buckets  [Bands]map[uint64]map[trace.Digest]struct{}
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{sketches: make(map[trace.Digest]*Sketch)}
	for b := range ix.buckets {
		ix.buckets[b] = make(map[uint64]map[trace.Digest]struct{})
	}
	return ix
}

// Add files (or re-files) a trace under its sketch's band buckets.
func (ix *Index) Add(id trace.Digest, sk *Sketch) {
	keys := sk.BandKeys()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.sketches[id]; ok {
		ix.removeLocked(id, old)
	}
	ix.sketches[id] = sk
	for b, key := range keys {
		set := ix.buckets[b][key]
		if set == nil {
			set = make(map[trace.Digest]struct{})
			ix.buckets[b][key] = set
		}
		set[id] = struct{}{}
	}
}

// Remove unfiles a trace. Unknown ids are a no-op.
func (ix *Index) Remove(id trace.Digest) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if sk, ok := ix.sketches[id]; ok {
		ix.removeLocked(id, sk)
		delete(ix.sketches, id)
	}
}

func (ix *Index) removeLocked(id trace.Digest, sk *Sketch) {
	for b, key := range sk.BandKeys() {
		if set := ix.buckets[b][key]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(ix.buckets[b], key)
			}
		}
	}
}

// Sketch returns the indexed sketch of a trace.
func (ix *Index) Sketch(id trace.Digest) (*Sketch, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	sk, ok := ix.sketches[id]
	return sk, ok
}

// Len returns the number of indexed traces.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sketches)
}

// Candidates returns the indexed traces sharing at least one band
// bucket with sk — the LSH shortlist for a query — sorted by id.
func (ix *Index) Candidates(sk *Sketch) []trace.Digest {
	keys := sk.BandKeys()
	seen := make(map[trace.Digest]struct{})
	ix.mu.RLock()
	for b, key := range keys {
		for id := range ix.buckets[b][key] {
			seen[id] = struct{}{}
		}
	}
	ix.mu.RUnlock()
	out := make([]trace.Digest, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortDigests(out)
	return out
}

// Clusters partitions the indexed traces: band-bucket cohabitation
// proposes candidate pairs, estimated Jaccard ≥ threshold confirms
// them, and the confirmed pairs are closed under union-find. Traces
// similar to nothing form singleton clusters. The result is
// deterministic: clusters ordered by size (desc) then smallest member,
// members ascending.
func (ix *Index) Clusters(threshold float64) [][]trace.Digest {
	ix.mu.RLock()
	ids := make([]trace.Digest, 0, len(ix.sketches))
	for id := range ix.sketches {
		ids = append(ids, id)
	}
	sortDigests(ids)
	pos := make(map[trace.Digest]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for b := range ix.buckets {
		for _, set := range ix.buckets[b] {
			if len(set) < 2 {
				continue
			}
			members := make([]int, 0, len(set))
			for id := range set {
				members = append(members, pos[id])
			}
			sort.Ints(members)
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					ri, rj := find(members[i]), find(members[j])
					if ri == rj {
						continue
					}
					if EstimatedJaccard(ix.sketches[ids[members[i]]], ix.sketches[ids[members[j]]]) >= threshold {
						parent[rj] = ri
					}
				}
			}
		}
	}
	groups := make(map[int][]trace.Digest)
	for i, id := range ids {
		r := find(i)
		groups[r] = append(groups[r], id)
	}
	ix.mu.RUnlock()
	out := make([][]trace.Digest, 0, len(groups))
	for _, g := range groups {
		sortDigests(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0].String() < out[j][0].String()
	})
	return out
}

// Stats summarizes the index for observability endpoints.
type Stats struct {
	Sketches int `json:"sketches"`     // indexed traces
	Bands    int `json:"bands"`        // LSH bands per sketch
	Buckets  int `json:"band_buckets"` // occupied buckets across all bands
}

// Stats snapshots the index.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Sketches: len(ix.sketches), Bands: Bands}
	for b := range ix.buckets {
		st.Buckets += len(ix.buckets[b])
	}
	return st
}

func sortDigests(ids []trace.Digest) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
}
