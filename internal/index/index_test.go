package index

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

func put(ix *Index, family, variant, n int) (trace.Digest, *Sketch) {
	tr := genTrace(family, variant, n)
	sk := SketchTrace(tr)
	id := tr.ComputeDigest()
	ix.Add(id, sk)
	return id, sk
}

func TestIndexAddRemove(t *testing.T) {
	ix := NewIndex()
	id, sk := put(ix, 1, 0, 100)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if got, ok := ix.Sketch(id); !ok || !reflect.DeepEqual(got, sk) {
		t.Fatal("Sketch did not return the filed sketch")
	}
	if cands := ix.Candidates(sk); len(cands) != 1 || cands[0] != id {
		t.Fatalf("Candidates = %v, want [%s]", cands, id)
	}
	ix.Remove(id)
	if ix.Len() != 0 || len(ix.Candidates(sk)) != 0 {
		t.Fatal("Remove left residue")
	}
	if st := ix.Stats(); st.Buckets != 0 {
		t.Fatalf("Stats.Buckets = %d after full removal, want 0", st.Buckets)
	}
	ix.Remove(id) // unknown id: no-op
}

func TestIndexReAddReplacesBuckets(t *testing.T) {
	ix := NewIndex()
	tr := genTrace(1, 0, 100)
	id := tr.ComputeDigest()
	ix.Add(id, SketchTrace(tr))
	// Re-file the same id under a very different sketch; the old band
	// buckets must not keep a ghost entry.
	other := SketchTrace(genTrace(7, 0, 100))
	ix.Add(id, other)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after re-add, want 1", ix.Len())
	}
	if cands := ix.Candidates(SketchTrace(genTrace(1, 0, 100))); len(cands) != 0 {
		t.Fatalf("stale band buckets still list the re-filed trace: %v", cands)
	}
}

func TestCandidatesFindSameFamily(t *testing.T) {
	ix := NewIndex()
	a, ska := put(ix, 1, 0, 120)
	b, _ := put(ix, 1, 1, 120)
	put(ix, 2, 0, 120)
	cands := ix.Candidates(ska)
	found := map[trace.Digest]bool{}
	for _, id := range cands {
		found[id] = true
	}
	if !found[a] || !found[b] {
		t.Errorf("same-family variants missing from candidates: %v", cands)
	}
}

func TestClustersPartitionByFamily(t *testing.T) {
	ix := NewIndex()
	byFamily := map[int]map[trace.Digest]bool{}
	for fam := 1; fam <= 3; fam++ {
		byFamily[fam] = map[trace.Digest]bool{}
		for v := 0; v < 4; v++ {
			id, _ := put(ix, fam, v, 120)
			byFamily[fam][id] = true
		}
	}
	clusters := ix.Clusters(0.5)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3 (one per family): %v", len(clusters), clusters)
	}
	for _, c := range clusters {
		if len(c) != 4 {
			t.Fatalf("cluster size %d, want 4", len(c))
		}
		fam := -1
		for f, members := range byFamily {
			if members[c[0]] {
				fam = f
			}
		}
		for _, id := range c {
			if !byFamily[fam][id] {
				t.Fatalf("cluster mixes families: %v", c)
			}
		}
	}
}

func TestClustersDeterministic(t *testing.T) {
	build := func() [][]trace.Digest {
		ix := NewIndex()
		// Insert in different orders across calls: the partition and its
		// presentation order must not care.
		for v := 3; v >= 0; v-- {
			put(ix, 1, v, 100)
			put(ix, 2, v, 100)
		}
		return ix.Clusters(0.5)
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Error("Clusters output is not deterministic")
	}
}

func TestIndexStats(t *testing.T) {
	ix := NewIndex()
	put(ix, 1, 0, 80)
	put(ix, 2, 0, 80)
	st := ix.Stats()
	if st.Sketches != 2 || st.Bands != Bands || st.Buckets == 0 {
		t.Errorf("Stats = %+v", st)
	}
}
