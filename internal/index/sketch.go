// Package index is the corpus-scale similarity layer: a fixed-width
// per-trace sketch computed once at ingest, and an LSH-banded in-memory
// index over those sketches. Together they turn "which of my stored
// traces diverge most/least from this one" from N full semantic diffs
// into a cheap shortlist plus a handful of exact refinements — the same
// coarsen-then-refine structure the paper's views bring to a single
// diff, applied across the corpus.
//
// A sketch carries two independent summaries:
//
//   - Counts: a bucket-count vector over =e equivalence classes (the
//     event-equality predicate of Fig. 9). Every similarity the views
//     differencer ever marks is gated on EventEqual, so an entry whose
//     =e class has zero occurrences on the other side is provably a
//     difference. Summing those one-sided counts yields DiffLowerBound,
//     a sound lower bound on Result.NumDiffs — the pruning bound of the
//     top-K search.
//   - MinHash: 64 min-wise hash slots over the trace's distinct feature
//     set (event classes, method names, target classes). Slot agreement
//     estimates Jaccard similarity; banded into BandKeys it drives the
//     LSH cluster index.
//
// Sketches are derived exclusively from the canonical Sym-free fields
// (the same strings trace.WriteCanonical hashes), never from interned
// trace.Sym ids, so a sketch is stable across symbol-table remappings,
// JSONL/RSEG round-trips, and segmentation changes.
package index

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/trace"
)

const (
	// SketchVersion is bumped whenever the feature extraction or the
	// layout changes; persisted sketches with another version are
	// recomputed, never reinterpreted.
	SketchVersion = 1
	// MinHashK is the number of min-wise hash slots.
	MinHashK = 64
	// CountBuckets is the width of the =e-class count vector. Collisions
	// between classes only merge buckets, which weakens (never breaks)
	// the lower bound.
	CountBuckets = 1024
	// Bands × BandRows = MinHashK. 16 bands of 4 rows put the LSH
	// S-curve threshold near (1/16)^(1/4) ≈ 0.5 estimated Jaccard.
	Bands    = 16
	BandRows = MinHashK / Bands
)

// Sketch is the fixed-width similarity summary of one trace.
type Sketch struct {
	// Total counts every entry folded in; Entries excludes EOF padding
	// (EOF entries are never differences, so they are invisible to the
	// bound and the features).
	Total   uint32
	Entries uint32
	Threads uint32
	MinHash [MinHashK]uint64
	Counts  [CountBuckets]uint32
}

// Sketcher folds trace entries into a sketch incrementally — one Add
// per entry, in any order, with no second pass — so Store.Put can
// sketch while it writes segments and live sessions can sketch as they
// append.
type Sketcher struct {
	sk       Sketch
	seenFeat map[uint64]struct{}
	seenTID  map[trace.ThreadID]struct{}
}

// NewSketcher returns an empty sketcher.
func NewSketcher() *Sketcher {
	s := &Sketcher{
		seenFeat: make(map[uint64]struct{}),
		seenTID:  make(map[trace.ThreadID]struct{}),
	}
	for i := range s.sk.MinHash {
		s.sk.MinHash[i] = ^uint64(0)
	}
	return s
}

// Add folds one entry into the sketch. Entries may arrive in any order;
// the sketch is a function of the entry multiset only.
func (s *Sketcher) Add(e *trace.Entry) {
	s.sk.Total++
	if e.IsEOF() {
		return
	}
	s.sk.Entries++
	if _, ok := s.seenTID[e.TID]; !ok {
		s.seenTID[e.TID] = struct{}{}
		s.sk.Threads++
	}
	ch := eventClassHash(e)
	s.sk.Counts[ch&(CountBuckets-1)]++
	s.feature(ch)
	s.feature(strFeature('m', e.Method))
	if c := e.Event.Target.Class; c != "" {
		s.feature(strFeature('c', c))
	}
}

// Sketch returns a copy of the accumulated sketch; the sketcher remains
// usable for further Adds.
func (s *Sketcher) Sketch() *Sketch {
	cp := s.sk
	return &cp
}

// SketchTrace computes the sketch of a whole trace in one pass.
func SketchTrace(t *trace.Trace) *Sketch {
	s := NewSketcher()
	for i := range t.Entries {
		s.Add(&t.Entries[i])
	}
	return s.Sketch()
}

// feature folds a distinct feature into the MinHash slots. Repeats are
// skipped (min-wise hashing is over the feature *set*), which also
// keeps the per-entry cost near zero once the vocabulary is seen. The
// per-slot hashes are the 2-universal family h1 + i·h2 (the standard
// MinHash construction): one add per slot instead of a full mix, and a
// pure function of the feature alone, so sketches stay comparable
// across machines.
func (s *Sketcher) feature(f uint64) {
	if _, ok := s.seenFeat[f]; ok {
		return
	}
	s.seenFeat[f] = struct{}{}
	h1 := splitmix64(f)
	h2 := splitmix64(f^0x9e3779b97f4a7c15) | 1
	v := h1
	for i := range s.sk.MinHash {
		if v < s.sk.MinHash[i] {
			s.sk.MinHash[i] = v
		}
		v += h2
	}
}

// DiffLowerBound is a sound lower bound on diff.Result.NumDiffs for the
// two sketched traces: every u.mark in the views differencer is gated
// on trace.EventEqual, so an entry whose =e class-hash bucket is empty
// on the other side can never be marked similar and must land in a
// difference set. Bucket collisions only merge classes, weakening the
// bound — never overstating it.
func DiffLowerBound(a, b *Sketch) int {
	lb := 0
	for i := range a.Counts {
		ca, cb := a.Counts[i], b.Counts[i]
		if cb == 0 {
			lb += int(ca)
		} else if ca == 0 {
			lb += int(cb)
		}
	}
	return lb
}

// DiffUpperBound bounds NumDiffs from above: at worst every non-EOF
// entry of both traces is a difference. Exact-length trivia aside, this
// is what makes "most divergent" pruning possible without touching the
// candidate's entries.
func DiffUpperBound(a, b *Sketch) int {
	return int(a.Entries) + int(b.Entries)
}

// EstimatedJaccard estimates the Jaccard similarity of the two traces'
// feature sets from MinHash slot agreement, in [0, 1].
func EstimatedJaccard(a, b *Sketch) float64 {
	match := 0
	for i := range a.MinHash {
		if a.MinHash[i] == b.MinHash[i] {
			match++
		}
	}
	return float64(match) / float64(MinHashK)
}

// BandKeys collapses the MinHash rows into one key per LSH band. Two
// traces agreeing on all rows of any band share that band's bucket.
func (sk *Sketch) BandKeys() [Bands]uint64 {
	var keys [Bands]uint64
	for b := 0; b < Bands; b++ {
		h := uint64(fnvOffset) ^ uint64(b)*fnvPrime
		for r := 0; r < BandRows; r++ {
			h = mix64(h, sk.MinHash[b*BandRows+r])
		}
		keys[b] = h
	}
	return keys
}

// ---- event-class hashing ----

// eventClassHash hashes the fields trace.EventEqual compares — and only
// those — so EventEqual(a, b) implies equal hashes. Kind always; fork
// and end events hash their stack shape (method + callee class per
// frame); every other kind hashes member, target value-representation
// (class, hash, str — never Loc or Seq, which are version-unstable and
// excluded from =e), and each argument's value-representation. Strings
// are hashed length-prefixed so field boundaries cannot alias.
func eventClassHash(e *trace.Entry) uint64 {
	ev := &e.Event
	h := uint64(fnvOffset)
	h = mix64(h, uint64(ev.Kind))
	switch ev.Kind {
	case trace.KindFork, trace.KindEnd:
		h = mix64(h, uint64(len(ev.Stack)))
		for i := range ev.Stack {
			h = mixStr(h, ev.Stack[i].Method)
			h = mixStr(h, ev.Stack[i].Callee.Class)
		}
	default:
		h = mixStr(h, ev.Member)
		h = mixRepr(h, &ev.Target)
		h = mix64(h, uint64(len(ev.Args)))
		for i := range ev.Args {
			h = mixRepr(h, &ev.Args[i])
		}
	}
	return h
}

func strFeature(tag byte, s string) uint64 {
	h := uint64(fnvOffset)
	h = mix64(h, uint64(tag))
	return mixStr(h, s)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mixStr(h uint64, s string) uint64 {
	h = mix64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func mixRepr(h uint64, r *trace.Repr) uint64 {
	h = mix64(h, r.Hash)
	h = mixStr(h, r.Class)
	return mixStr(h, r.Str)
}

// mix64 folds a word into the running hash: xor, then the bijective
// splitmix64 finalizer. Collisions of the combined state require the
// xor-ed inputs to collide exactly, and the full-width finalizer is a
// fraction of the byte-at-a-time FNV chain it replaces — this is the
// inner loop of Store.Put's sketching pass.
func mix64(h, v uint64) uint64 {
	return splitmix64(h ^ v)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer, fixed here so every process hashes
// features identically (sketches must be comparable across machines).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ---- persistence ----

// ErrSketchFormat reports a persisted sketch this version of the code
// does not understand (wrong version, truncated vectors). Loaders treat
// it as "no sketch" and recompute.
var ErrSketchFormat = errors.New("index: unreadable sketch")

// sketchWire is the sidecar JSON layout. The two vectors travel as
// base64 of their little-endian fixed-width encoding: compact, and
// byte-exact across round trips.
type sketchWire struct {
	Version int    `json:"version"`
	Total   uint32 `json:"total"`
	Entries uint32 `json:"entries"`
	Threads uint32 `json:"threads"`
	MinHash string `json:"minhash"`
	Counts  string `json:"counts"`
}

// Marshal encodes the sketch for its sidecar file.
func (sk *Sketch) Marshal() ([]byte, error) {
	mh := make([]byte, MinHashK*8)
	for i, v := range sk.MinHash {
		binary.LittleEndian.PutUint64(mh[i*8:], v)
	}
	cnt := make([]byte, CountBuckets*4)
	for i, v := range sk.Counts {
		binary.LittleEndian.PutUint32(cnt[i*4:], v)
	}
	return json.Marshal(sketchWire{
		Version: SketchVersion,
		Total:   sk.Total,
		Entries: sk.Entries,
		Threads: sk.Threads,
		MinHash: base64.StdEncoding.EncodeToString(mh),
		Counts:  base64.StdEncoding.EncodeToString(cnt),
	})
}

// UnmarshalSketch decodes a sidecar written by Marshal.
func UnmarshalSketch(raw []byte) (*Sketch, error) {
	var w sketchWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSketchFormat, err)
	}
	if w.Version != SketchVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSketchFormat, w.Version, SketchVersion)
	}
	mh, err := base64.StdEncoding.DecodeString(w.MinHash)
	if err != nil || len(mh) != MinHashK*8 {
		return nil, fmt.Errorf("%w: bad minhash block", ErrSketchFormat)
	}
	cnt, err := base64.StdEncoding.DecodeString(w.Counts)
	if err != nil || len(cnt) != CountBuckets*4 {
		return nil, fmt.Errorf("%w: bad counts block", ErrSketchFormat)
	}
	sk := &Sketch{Total: w.Total, Entries: w.Entries, Threads: w.Threads}
	for i := range sk.MinHash {
		sk.MinHash[i] = binary.LittleEndian.Uint64(mh[i*8:])
	}
	for i := range sk.Counts {
		sk.Counts[i] = binary.LittleEndian.Uint32(cnt[i*4:])
	}
	return sk, nil
}
