package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/diff"
	"repro/internal/trace"
	"repro/internal/views"
)

// genTrace builds a deterministic test trace: family selects the
// method/class vocabulary, variant perturbs ~10% of the argument
// values.
func genTrace(family, variant, n int) *trace.Trace {
	t := trace.New(fmt.Sprintf("fam%d-var%d", family, variant))
	for i := 0; i < n; i++ {
		class := fmt.Sprintf("Fam%dNode", family)
		method := fmt.Sprintf("Fam%d.op%d/1", family, (i+family)%5)
		obj := trace.Repr{Loc: trace.Loc(i%7 + 1), Class: class, Seq: i%7 + 1}
		v := family*100000 + i
		if (i*13+3)%10 == 0 {
			v += (variant + 1) * 1000
		}
		val := trace.Repr{Class: "Int", Hash: uint64(v), Str: fmt.Sprintf("%d", v)}
		t.Append(trace.ThreadID(i%2+1), method, obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: method, Args: []trace.Repr{val}})
	}
	t.EnsureSyms()
	return t
}

func TestSketchStableAcrossJSONLRoundTrip(t *testing.T) {
	tr := genTrace(1, 0, 120)
	want := SketchTrace(tr)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(tr.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := SketchTrace(back); !reflect.DeepEqual(got, want) {
		t.Error("sketch changed across JSONL round-trip")
	}
}

func TestSketchStableAcrossRSEGRoundTrip(t *testing.T) {
	tr := genTrace(2, 1, 120)
	want := SketchTrace(tr)

	var buf bytes.Buffer
	if err := tr.WriteRSEGOpts(&buf, trace.RSEGOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadAny(tr.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := SketchTrace(back); !reflect.DeepEqual(got, want) {
		t.Error("sketch changed across RSEG round-trip")
	}
}

// TestSketchIgnoresSymRemapping is the stability property the sidecar
// persistence rests on: the sketch is a function of the canonical
// strings only, so scrambling every interned Sym id — as a different
// process's symbol table numbering would — must not change it.
func TestSketchIgnoresSymRemapping(t *testing.T) {
	tr := genTrace(3, 2, 100)
	want := SketchTrace(tr)

	scrambled := &trace.Trace{Name: tr.Name, Entries: make([]trace.Entry, len(tr.Entries))}
	copy(scrambled.Entries, tr.Entries)
	for i := range scrambled.Entries {
		e := &scrambled.Entries[i]
		e.MethodSym = trace.Sym(i + 5000)
		e.Self.ClassSym = trace.Sym(i + 6000)
		e.Self.StrSym = trace.Sym(i + 7000)
		e.Event.MemberSym = trace.Sym(i + 8000)
		e.Event.Target.ClassSym = trace.Sym(i + 9000)
		args := make([]trace.Repr, len(e.Event.Args))
		copy(args, e.Event.Args)
		for j := range args {
			args[j].ClassSym = trace.Sym(i*10 + j + 10000)
			args[j].StrSym = trace.Sym(i*10 + j + 20000)
		}
		e.Event.Args = args
	}
	if got := SketchTrace(scrambled); !reflect.DeepEqual(got, want) {
		t.Error("sketch depends on interned Sym ids; must derive from canonical strings only")
	}
}

// TestSketchOrderIndependent: the sketch is a multiset summary, so the
// segmentation order entries arrive in (or any permutation) is
// invisible to it.
func TestSketchOrderIndependent(t *testing.T) {
	tr := genTrace(4, 0, 150)
	want := SketchTrace(tr)

	perm := &trace.Trace{Name: tr.Name, Entries: make([]trace.Entry, len(tr.Entries))}
	copy(perm.Entries, tr.Entries)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(perm.Entries), func(i, j int) {
		perm.Entries[i], perm.Entries[j] = perm.Entries[j], perm.Entries[i]
	})
	if got := SketchTrace(perm); !reflect.DeepEqual(got, want) {
		t.Error("sketch changed under entry permutation")
	}
}

func TestSketchCountsEOFAndThreads(t *testing.T) {
	tr := genTrace(1, 0, 40)
	other := genTrace(1, 0, 44)
	trace.PadEOF(tr, other) // pads tr with EOF entries up to other's length
	sk := SketchTrace(tr)
	if int(sk.Total) != tr.Len() {
		t.Errorf("Total = %d, want %d", sk.Total, tr.Len())
	}
	if sk.Entries >= sk.Total {
		t.Errorf("Entries = %d must exclude the EOF padding (total %d)", sk.Entries, sk.Total)
	}
	if sk.Threads != 2 {
		t.Errorf("Threads = %d, want 2", sk.Threads)
	}
}

// TestBoundsBracketExactDiff is the soundness property the pruned
// search rests on: for any pair, DiffLowerBound ≤ NumDiffs ≤
// DiffUpperBound under the exact views differencer.
func TestBoundsBracketExactDiff(t *testing.T) {
	cases := [][2]*trace.Trace{
		{genTrace(1, 0, 100), genTrace(1, 1, 100)}, // near: same family
		{genTrace(1, 0, 100), genTrace(2, 0, 100)}, // far: different family
		{genTrace(1, 0, 100), genTrace(1, 0, 100)}, // identical
		{genTrace(3, 1, 80), genTrace(3, 4, 120)},  // different lengths
	}
	for i, c := range cases {
		a, b := c[0], c[1]
		ska, skb := SketchTrace(a), SketchTrace(b)
		res := diff.ViewDiffWebs(views.Build(a), views.Build(b), diff.ViewOptions{})
		lb, ub := DiffLowerBound(ska, skb), DiffUpperBound(ska, skb)
		if lb > res.NumDiffs() || res.NumDiffs() > ub {
			t.Errorf("case %d: bounds [%d, %d] do not bracket exact %d", i, lb, ub, res.NumDiffs())
		}
	}
}

func TestEstimatedJaccard(t *testing.T) {
	a := SketchTrace(genTrace(1, 0, 100))
	if j := EstimatedJaccard(a, a); j != 1.0 {
		t.Errorf("self-Jaccard = %v, want 1.0", j)
	}
	near := SketchTrace(genTrace(1, 1, 100))
	far := SketchTrace(genTrace(9, 0, 100))
	if jn, jf := EstimatedJaccard(a, near), EstimatedJaccard(a, far); jn <= jf {
		t.Errorf("same-family Jaccard %v should exceed cross-family %v", jn, jf)
	}
}

func TestBandKeysAgreeOnEqualSketches(t *testing.T) {
	a := SketchTrace(genTrace(5, 0, 90))
	b := SketchTrace(genTrace(5, 0, 90))
	if a.BandKeys() != b.BandKeys() {
		t.Error("equal sketches produced different band keys")
	}
}

func TestSketchMarshalRoundTrip(t *testing.T) {
	want := SketchTrace(genTrace(6, 3, 130))
	raw, err := want.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSketch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sketch changed across Marshal/Unmarshal")
	}
}

func TestUnmarshalSketchRejectsGarbage(t *testing.T) {
	for _, raw := range []string{
		"not json",
		`{"version": 99, "minhash": "", "counts": ""}`,
		`{"version": 1, "minhash": "AAAA", "counts": "AAAA"}`,
	} {
		if _, err := UnmarshalSketch([]byte(raw)); err == nil {
			t.Errorf("UnmarshalSketch(%q) accepted garbage", raw)
		}
	}
}
