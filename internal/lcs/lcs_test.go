package lcs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func strEq(a, b []string) Eq {
	return func(i, j int) bool { return a[i] == b[j] }
}

func split(s string) []string {
	out := make([]string, len(s))
	for i, r := range []byte(s) {
		out[i] = string(r)
	}
	return out
}

func lcsString(a, b string, alg Algorithm) string {
	as, bs := split(a), split(b)
	pairs, _, err := Compute(len(as), len(bs), strEq(as, bs), Options{Algorithm: alg})
	if err != nil {
		panic(err)
	}
	var out []byte
	for _, p := range pairs {
		out = append(out, a[p.I])
	}
	return string(out)
}

func TestKnownLCS(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"abc", "", ""},
		{"", "abc", ""},
		{"abc", "abc", "abc"},
		{"abcdef", "abdf", "abdf"},
		{"XMJYAUZ", "MZJAWXU", "MJAU"},
		{"AGGTAB", "GXTXAYB", "GTAB"},
		{"aaaa", "aa", "aa"},
		{"abcXYdef", "abcdef", "abcdef"},
	}
	for _, c := range cases {
		for _, alg := range []Algorithm{DP, Hirschberg} {
			got := lcsString(c.a, c.b, alg)
			if len(got) != len(c.want) {
				t.Errorf("alg %d: lcs(%q, %q) = %q (len %d), want length %d",
					alg, c.a, c.b, got, len(got), len(c.want))
			}
		}
	}
}

// Fig. 10's example: moved subsequences are not detected by LCS.
func TestMovedSubsequenceNotDetected(t *testing.T) {
	a := split("XYabcd")
	b := split("abcdXY")
	pairs, _, err := Compute(len(a), len(b), strEq(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 { // only "abcd" (or "XY..." variants ≤ 4)
		t.Errorf("lcs length = %d, want 4 (moved XY cannot also match)", len(pairs))
	}
}

func randomSeq(r *rand.Rand, n, alphabet int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + r.Intn(alphabet)))
	}
	return out
}

func TestPropertyPairsValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSeq(r, r.Intn(30), 4)
		b := randomSeq(r, r.Intn(30), 4)
		pairs, _, err := Compute(len(a), len(b), strEq(a, b), Options{})
		if err != nil {
			return false
		}
		// Pairs strictly increasing in both coordinates, all matches real.
		for k, p := range pairs {
			if a[p.I] != b[p.J] {
				return false
			}
			if k > 0 && (p.I <= pairs[k-1].I || p.J <= pairs[k-1].J) {
				return false
			}
		}
		// Length bounded by min.
		if len(pairs) > len(a) || len(pairs) > len(b) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySelfLCS(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSeq(r, r.Intn(50), 3)
		pairs, _, err := Compute(len(a), len(a), strEq(a, a), Options{})
		return err == nil && len(pairs) == len(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDPandHirschbergAgreeOnLength(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSeq(r, r.Intn(40), 3)
		b := randomSeq(r, r.Intn(40), 3)
		d, _, err1 := Compute(len(a), len(b), strEq(a, b), Options{Algorithm: DP})
		h, _, err2 := Compute(len(a), len(b), strEq(a, b), Options{Algorithm: Hirschberg})
		l, _ := Length(len(a), len(b), strEq(a, b))
		return err1 == nil && err2 == nil && len(d) == len(h) && len(d) == l
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertySymmetricLength(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSeq(r, r.Intn(30), 3)
		b := randomSeq(r, r.Intn(30), 3)
		ab, _ := Length(len(a), len(b), strEq(a, b))
		ba, _ := Length(len(b), len(a), strEq(b, a))
		return ab == ba
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBudget(t *testing.T) {
	a := randomSeq(rand.New(rand.NewSource(1)), 200, 2)
	b := randomSeq(rand.New(rand.NewSource(2)), 200, 2)
	_, _, err := Compute(len(a), len(b), strEq(a, b), Options{MemoryBudget: 100})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("err = %v, want ErrMemoryBudget", err)
	}
	// Identical sequences are fully handled by prefix trimming: no table
	// is allocated, so even a tiny budget succeeds.
	pairs, _, err := Compute(len(a), len(a), strEq(a, a), Options{MemoryBudget: 100})
	if err != nil || len(pairs) != len(a) {
		t.Errorf("trimmed case: pairs=%d err=%v", len(pairs), err)
	}
}

func TestHirschbergUsesLinearSpace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomSeq(r, 300, 3)
	b := randomSeq(r, 300, 3)
	_, stDP, err := Compute(len(a), len(b), strEq(a, b), Options{Algorithm: DP})
	if err != nil {
		t.Fatal(err)
	}
	_, stH, err := Compute(len(a), len(b), strEq(a, b), Options{Algorithm: Hirschberg})
	if err != nil {
		t.Fatal(err)
	}
	if stH.Cells >= stDP.Cells/10 {
		t.Errorf("Hirschberg cells = %d, DP cells = %d: not linear space", stH.Cells, stDP.Cells)
	}
	// Hirschberg trades space for compares (roughly 2x).
	if stH.Compares < stDP.Compares {
		t.Errorf("Hirschberg compares = %d < DP compares = %d", stH.Compares, stDP.Compares)
	}
}

func TestCompareCounting(t *testing.T) {
	a := split("abcd")
	b := split("abcd")
	_, st, err := Compute(len(a), len(b), strEq(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical strings: all handled by prefix scan = 4 compares (+0 suffix).
	if st.Compares != 4 {
		t.Errorf("compares = %d, want 4 for identical inputs", st.Compares)
	}
	c := split("xbcd")
	_, st2, err := Compute(len(a), len(c), strEq(a, c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Compares <= 4 {
		t.Errorf("compares = %d, expected table work", st2.Compares)
	}
}

func TestPrefixSuffixTrimmingReducesWork(t *testing.T) {
	// Long common prefix/suffix with a small differing middle.
	mk := func(mid string) []string {
		var out []string
		for i := 0; i < 500; i++ {
			out = append(out, "p")
		}
		out = append(out, split(mid)...)
		for i := 0; i < 500; i++ {
			out = append(out, "s")
		}
		return out
	}
	a, b := mk("abc"), mk("axc")
	_, st, err := Compute(len(a), len(b), strEq(a, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(a)) * int64(len(b))
	if st.Compares > full/100 {
		t.Errorf("compares = %d, trimming should cut below %d", st.Compares, full/100)
	}
}

func TestStringsHelper(t *testing.T) {
	got := Strings([]string{"a", "b", "c"}, []string{"a", "x", "c"})
	if len(got) != 2 || got[0] != (Pair{0, 0}) || got[1] != (Pair{2, 2}) {
		t.Errorf("Strings = %v", got)
	}
}
