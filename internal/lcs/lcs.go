// Package lcs provides longest-common-subsequence computation over
// abstract sequences, in two variants: the classic O(n·m) dynamic program
// with common-prefix/suffix trimming (the paper's "optimized version of
// the LCS algorithm", §5.1), and Hirschberg's linear-space algorithm [9]
// (roughly twice the comparisons).
//
// The package counts element comparisons — the paper's speedup metric —
// and enforces an optional memory budget so the evaluation can reproduce
// the "LCS failed due to memory exhaustion" outcomes of Table 1.
package lcs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Eq compares element i of the left sequence with element j of the right.
type Eq func(i, j int) bool

// Pair is one matched index pair of the common subsequence.
type Pair struct{ I, J int }

// Stats records the cost of a computation.
type Stats struct {
	// Compares is the number of element comparison operations performed —
	// the unit of the paper's speedup histogram (Fig. 14b).
	Compares int64
	// Cells is the peak number of DP table cells held in memory.
	Cells int64
}

// Algorithm selects the LCS implementation.
type Algorithm uint8

const (
	// DP is the standard dynamic program: O(n·m) time and space.
	DP Algorithm = iota
	// Hirschberg uses linear space at roughly double the comparisons.
	Hirschberg
)

// Options configures a computation.
type Options struct {
	Algorithm Algorithm
	// MemoryBudget caps the DP table size in cells (0 = unlimited). The
	// budget models RPRISM's experimental machine: exceeding it is the
	// "out of memory failure" of Table 1.
	MemoryBudget int64
	// Ctx, when non-nil, is polled between DP rows; a canceled context
	// aborts the computation with the context's error. Full-trace LCS
	// tables run for minutes on large inputs, so servers need a way to
	// kill them mid-flight.
	Ctx context.Context
	// Budget, when non-nil, is a pool of DP cells shared with other
	// concurrent computations. The table's cells are reserved before
	// allocation and released when the computation finishes; a Compute
	// that does not fit while others hold cells blocks (honoring Ctx)
	// until enough are released. Unlike MemoryBudget, which is a per-call
	// hard cap, a shared Budget only fails a computation whose table
	// exceeds the whole pool — a condition independent of what runs
	// concurrently, so results stay deterministic under any scheduling.
	Budget *Budget
}

// ErrMemoryBudget is returned when the DP table would exceed the budget.
var ErrMemoryBudget = errors.New("lcs: memory budget exceeded")

// Budget is a concurrency-safe pool of DP-table cells shared by any
// number of Compute calls running on different goroutines. The parallel
// views differ hands one Budget to all of its per-thread-pair units so
// their concurrently live windowed-LCS tables collectively respect one
// memory cap, reproducing the paper's single-machine memory model even
// when the diff saturates every core.
//
// A nil *Budget is valid everywhere and costs one pointer comparison —
// the serial path pays nothing.
type Budget struct {
	capacity int64
	mu       sync.Mutex
	used     int64
	waiters  int           // blocked Reserves; Release only signals when > 0
	wait     chan struct{} // closed and replaced by a Release with waiters
}

// NewBudget returns a pool of the given number of DP cells. Non-positive
// capacities return nil, the unlimited budget.
func NewBudget(cells int64) *Budget {
	if cells <= 0 {
		return nil
	}
	return &Budget{capacity: cells, wait: make(chan struct{})}
}

// Reserve claims n cells, blocking until they are available. It fails
// immediately with ErrMemoryBudget when n exceeds the pool's whole
// capacity (so a too-large table is rejected deterministically, not
// depending on concurrent holders), and with the context's error when
// ctx ends while waiting. A nil budget admits everything.
func (b *Budget) Reserve(ctx context.Context, n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	if n > b.capacity {
		return fmt.Errorf("%w: need %d cells, budget %d", ErrMemoryBudget, n, b.capacity)
	}
	for {
		b.mu.Lock()
		if b.used+n <= b.capacity {
			b.used += n
			b.mu.Unlock()
			return nil
		}
		b.waiters++
		wait := b.wait
		b.mu.Unlock()
		if ctx == nil {
			<-wait
			continue
		}
		select {
		case <-wait:
		case <-ctx.Done():
			// The waiter count was consumed by the Release that closed
			// the channel (or will be reset by the next one); losing to
			// a concurrent close here is harmless — at worst one extra
			// channel cycle.
			return ctx.Err()
		}
	}
}

// Release returns n cells to the pool and wakes every blocked Reserve.
// The uncontended path — every windowed-LCS exploration of a diff whose
// budget never fills — touches only the mutex and two integers; the wait
// channel is cycled only when a Reserve is actually blocked.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	if b.waiters > 0 {
		b.waiters = 0
		close(b.wait)
		b.wait = make(chan struct{})
	}
	b.mu.Unlock()
}

// InUse reports the currently reserved cells.
func (b *Budget) InUse() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Capacity reports the pool size (0 for the nil, unlimited budget).
func (b *Budget) Capacity() int64 {
	if b == nil {
		return 0
	}
	return b.capacity
}

// Compute returns the matched pairs of a longest common subsequence of
// sequences of lengths n and m under eq, in ascending order.
func Compute(n, m int, eq Eq, opts Options) ([]Pair, Stats, error) {
	var st Stats
	counted := func(i, j int) bool {
		st.Compares++
		return eq(i, j)
	}

	// Common-prefix/suffix trimming.
	pre := 0
	for pre < n && pre < m && counted(pre, pre) {
		pre++
	}
	suf := 0
	for pre+suf < n && pre+suf < m && counted(n-1-suf, m-1-suf) {
		suf++
	}
	innerN, innerM := n-pre-suf, m-pre-suf

	var inner []Pair
	var err error
	if innerN > 0 && innerM > 0 {
		// Reserve the table's cells from the shared pool (when one is
		// configured) for the whole inner computation: the DP table for
		// the standard algorithm, the two rolling rows for Hirschberg.
		reserve := (int64(innerN) + 1) * (int64(innerM) + 1)
		if opts.Algorithm == Hirschberg {
			reserve = 2 * int64(innerM+1)
		}
		if err := opts.Budget.Reserve(opts.Ctx, reserve); err != nil {
			return nil, st, err
		}
		defer opts.Budget.Release(reserve)
		shifted := func(i, j int) bool { return counted(pre+i, pre+j) }
		switch opts.Algorithm {
		case Hirschberg:
			inner, err = hirschberg(opts.Ctx, innerN, innerM, shifted, &st, opts.MemoryBudget)
		default:
			inner, err = dp(opts.Ctx, innerN, innerM, shifted, &st, opts.MemoryBudget)
		}
		if err != nil {
			return nil, st, err
		}
	}

	out := make([]Pair, 0, pre+len(inner)+suf)
	for i := 0; i < pre; i++ {
		out = append(out, Pair{i, i})
	}
	for _, p := range inner {
		out = append(out, Pair{p.I + pre, p.J + pre})
	}
	for i := suf; i > 0; i-- {
		out = append(out, Pair{n - i, m - i})
	}
	return out, st, nil
}

// Length returns only the LCS length (linear space, no reconstruction).
func Length(n, m int, eq Eq) (int, Stats) {
	var st Stats
	counted := func(i, j int) bool {
		st.Compares++
		return eq(i, j)
	}
	row, _ := lcsRow(nil, n, m, counted, false)
	st.Cells = int64(m + 1)
	return int(row[m]), st
}

// ctxErr polls ctx (nil means uncancellable) — the shared cancellation
// check of the DP loops.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func dp(ctx context.Context, n, m int, eq Eq, st *Stats, budget int64) ([]Pair, error) {
	cells := (int64(n) + 1) * (int64(m) + 1)
	if budget > 0 && cells > budget {
		return nil, fmt.Errorf("%w: need %d cells, budget %d", ErrMemoryBudget, cells, budget)
	}
	if cells > st.Cells {
		st.Cells = cells
	}
	width := m + 1
	tab := make([]int32, cells)
	at := func(i, j int) int32 { return tab[i*width+j] }
	for i := 1; i <= n; i++ {
		if i&15 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		for j := 1; j <= m; j++ {
			if eq(i-1, j-1) {
				tab[i*width+j] = at(i-1, j-1) + 1
			} else if at(i-1, j) >= at(i, j-1) {
				tab[i*width+j] = at(i-1, j)
			} else {
				tab[i*width+j] = at(i, j-1)
			}
		}
	}
	// Backtrack.
	var rev []Pair
	for i, j := n, m; i > 0 && j > 0; {
		switch {
		case eq(i-1, j-1):
			rev = append(rev, Pair{i - 1, j - 1})
			i--
			j--
		case at(i-1, j) >= at(i, j-1):
			i--
		default:
			j--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, nil
}

// lcsRow computes the final DP row in O(m) space. If rev is true the
// sequences are traversed in reverse (for Hirschberg's split step).
func lcsRow(ctx context.Context, n, m int, eq Eq, rev bool) ([]int32, error) {
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	for i := 1; i <= n; i++ {
		if i&15 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		cur[0] = 0
		for j := 1; j <= m; j++ {
			var same bool
			if rev {
				same = eq(n-i, m-j)
			} else {
				same = eq(i-1, j-1)
			}
			if same {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// hirschberg reconstructs an LCS in linear space.
func hirschberg(ctx context.Context, n, m int, eq Eq, st *Stats, budget int64) ([]Pair, error) {
	if rows := int64(m+1) * 2; rows > st.Cells {
		st.Cells = rows
	}
	switch {
	case n == 0 || m == 0:
		return nil, nil
	case n == 1:
		for j := 0; j < m; j++ {
			if eq(0, j) {
				return []Pair{{0, j}}, nil
			}
		}
		return nil, nil
	}
	mid := n / 2
	upper, err := lcsRow(ctx, mid, m, eq, false)
	if err != nil {
		return nil, err
	}
	lowerEq := func(i, j int) bool { return eq(mid+i, j) }
	lower, err := lcsRow(ctx, n-mid, m, lowerEq, true)
	if err != nil {
		return nil, err
	}
	// Find the split point k maximizing upper[k] + lower[m-k].
	best, bestK := int32(-1), 0
	for k := 0; k <= m; k++ {
		if v := upper[k] + lower[m-k]; v > best {
			best, bestK = v, k
		}
	}
	left, err := hirschberg(ctx, mid, bestK, eq, st, budget)
	if err != nil {
		return nil, err
	}
	rightEq := func(i, j int) bool { return eq(mid+i, bestK+j) }
	right, err := hirschberg(ctx, n-mid, m-bestK, rightEq, st, budget)
	if err != nil {
		return nil, err
	}
	out := left
	for _, p := range right {
		out = append(out, Pair{p.I + mid, p.J + bestK})
	}
	return out, nil
}

// Strings computes the LCS pairs of two string slices with the DP
// algorithm — a convenience for tests and small inputs.
func Strings(a, b []string) []Pair {
	pairs, _, _ := Compute(len(a), len(b), func(i, j int) bool { return a[i] == b[j] }, Options{})
	return pairs
}
