package lcs

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Reserve(context.Background(), 1<<40); err != nil {
		t.Fatalf("nil budget rejected a reservation: %v", err)
	}
	b.Release(1 << 40) // must not panic
	if b.InUse() != 0 || b.Capacity() != 0 {
		t.Fatal("nil budget reports usage")
	}
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Fatal("non-positive capacities must return the nil budget")
	}
}

func TestBudgetRejectsOversizedDeterministically(t *testing.T) {
	b := NewBudget(100)
	// Too large fails immediately even while the pool is completely free.
	if err := b.Reserve(context.Background(), 101); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("oversized reservation: err = %v, want ErrMemoryBudget", err)
	}
	if b.InUse() != 0 {
		t.Fatalf("failed reservation leaked %d cells", b.InUse())
	}
}

func TestBudgetBlocksUntilRelease(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := b.Reserve(context.Background(), 50); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("50-cell reservation fit in a pool holding 80/100")
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(80)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("reservation still blocked after release")
	}
	if got := b.InUse(); got != 50 {
		t.Fatalf("InUse = %d, want 50", got)
	}
	b.Release(50)
}

func TestBudgetReserveHonorsContext(t *testing.T) {
	b := NewBudget(10)
	if err := b.Reserve(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Reserve(ctx, 5) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked Reserve: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Reserve ignored cancellation")
	}
	b.Release(10)
}

// TestBudgetSharedComputeDeterminism runs many concurrent Computes
// through a pool that fits only one table at a time: every computation
// must block for its turn and still produce the serial answer.
func TestBudgetSharedComputeDeterminism(t *testing.T) {
	a := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	bs := []string{"a", "x", "c", "d", "y", "f", "z", "h"}
	eq := func(i, j int) bool { return a[i] != "?" && a[i] == bs[j] }
	want, _, err := Compute(len(a), len(bs), eq, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewBudget(100) // fits exactly one (5+1)*(5+1)=36-cell inner table
	var wg sync.WaitGroup
	results := make([][]Pair, 16)
	errs := make([]error, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], _, errs[g] = Compute(len(a), len(bs), eq, Options{Budget: pool})
		}(g)
	}
	wg.Wait()
	for g := range results {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], want) {
			t.Fatalf("goroutine %d: pairs %v, want %v", g, results[g], want)
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool still holds %d cells after all computations", pool.InUse())
	}
}
