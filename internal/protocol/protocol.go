// Package protocol implements one of the paper's envisioned view-based
// analyses (§4: "object protocol inference, property checking (e.g.,
// typestate)"): it infers, from the target-object views of a trace, a
// per-class object protocol — the observed method-call orderings over
// each object's lifetime — as a transition model, checks traces against
// declared protocols (typestate checking), and diffs inferred protocols
// across program versions to expose protocol drift.
package protocol

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/views"
)

// Start and End are the synthetic lifecycle states bracketing an object's
// observed method sequence.
const (
	Start = "^"
	End   = "$"
)

// Model is an inferred object protocol for one class: observed
// method-to-method transition counts over all instances.
type Model struct {
	Class       string
	Objects     int
	Transitions map[string]map[string]int
}

// Infer builds the protocol model of a class from the trace's
// target-object views: for every object of the class, the sequence of
// methods invoked on it (its TO view restricted to call events) becomes a
// path Start → m1 → … → mk → End.
func Infer(w *views.Web, class string) *Model {
	m := &Model{Class: class, Transitions: make(map[string]map[string]int)}
	for _, n := range w.Names() {
		if n.Type != views.TargetObject {
			continue
		}
		seq := methodSequence(w, n, class)
		if seq == nil {
			continue
		}
		m.Objects++
		prev := Start
		for _, method := range seq {
			m.addTransition(prev, method)
			prev = method
		}
		m.addTransition(prev, End)
	}
	return m
}

// methodSequence extracts the ordered method invocations on the view's
// object, or nil if the object is not of the wanted class or never
// created in view (no init observed and no calls).
func methodSequence(w *views.Web, n views.Name, class string) []string {
	var seq []string
	matched := false
	for _, e := range w.Entries(n) {
		switch e.Event.Kind {
		case trace.KindInit:
			if e.Event.Member == class {
				matched = true
			}
		case trace.KindCall:
			if e.Event.Target.Class != class {
				return nil
			}
			matched = true
			seq = append(seq, simpleMethod(e.Event.Member))
		case trace.KindGet, trace.KindSet:
			if e.Event.Target.Class != class {
				return nil
			}
		}
	}
	if !matched {
		return nil
	}
	return seq
}

// simpleMethod strips the defining class and arity from a qualified
// method name C.m/2.
func simpleMethod(qualified string) string {
	s := qualified
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func (m *Model) addTransition(from, to string) {
	tos := m.Transitions[from]
	if tos == nil {
		tos = make(map[string]int)
		m.Transitions[from] = tos
	}
	tos[to]++
}

// Allows reports whether the model has observed the transition.
func (m *Model) Allows(from, to string) bool {
	return m.Transitions[from][to] > 0
}

// States returns all states (methods plus lifecycle markers), sorted.
func (m *Model) States() []string {
	set := map[string]bool{}
	for from, tos := range m.Transitions {
		set[from] = true
		for to := range tos {
			set[to] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders the model as sorted "from -> to (count)" lines.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s (%d object(s)):\n", m.Class, m.Objects)
	froms := make([]string, 0, len(m.Transitions))
	for f := range m.Transitions {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, f := range froms {
		tos := make([]string, 0, len(m.Transitions[f]))
		for t := range m.Transitions[f] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, t := range tos {
			fmt.Fprintf(&b, "  %s -> %s (%d)\n", f, t, m.Transitions[f][t])
		}
	}
	return b.String()
}

// Change is one protocol difference between two versions.
type Change struct {
	From, To string
	// Added is true when the transition exists only in the new model,
	// false when it was lost.
	Added bool
}

func (c Change) String() string {
	verb := "added"
	if !c.Added {
		verb = "removed"
	}
	return fmt.Sprintf("%s transition %s -> %s", verb, c.From, c.To)
}

// DiffModels reports protocol drift: transitions present in exactly one
// of the two models, deterministically ordered.
func DiffModels(old, new *Model) []Change {
	var out []Change
	seen := map[[2]string]bool{}
	for from, tos := range old.Transitions {
		for to := range tos {
			if !new.Allows(from, to) {
				out = append(out, Change{From: from, To: to, Added: false})
			}
			seen[[2]string{from, to}] = true
		}
	}
	for from, tos := range new.Transitions {
		for to := range tos {
			if !seen[[2]string{from, to}] && !old.Allows(from, to) {
				out = append(out, Change{From: from, To: to, Added: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return !out[i].Added && out[j].Added
	})
	return out
}

// ---- typestate checking against a declared protocol ----

// Decl is a declared object protocol: the permitted method-order
// transitions for a class (typestate property).
type Decl struct {
	Class string
	// Allowed maps a state to the set of methods permitted next. Start
	// and End are implicit states; omit End to allow stopping anywhere.
	Allowed map[string][]string
}

// Violation is a protocol breach observed in a trace.
type Violation struct {
	EID      trace.EntryID
	Loc      trace.Loc
	From, To string
}

func (v Violation) String() string {
	return fmt.Sprintf("entry %d: object l%d: %s -> %s not permitted", v.EID, v.Loc, v.From, v.To)
}

// CheckTrace verifies every object of the declared class follows the
// protocol, returning all violations in trace order.
func CheckTrace(w *views.Web, d Decl) []Violation {
	permitted := func(from, to string) bool {
		for _, m := range d.Allowed[from] {
			if m == to {
				return true
			}
		}
		return false
	}
	var out []Violation
	for _, n := range w.Names() {
		if n.Type != views.TargetObject {
			continue
		}
		state := Start
		var loc trace.Loc
		for _, e := range w.Entries(n) {
			if e.Event.Kind == trace.KindInit && e.Event.Member == d.Class {
				loc = e.Event.Target.Loc
				continue
			}
			if e.Event.Kind != trace.KindCall || e.Event.Target.Class != d.Class {
				continue
			}
			loc = e.Event.Target.Loc
			method := simpleMethod(e.Event.Member)
			if !permitted(state, method) {
				out = append(out, Violation{EID: e.EID, Loc: loc, From: state, To: method})
			}
			state = method
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EID < out[j].EID })
	return out
}
