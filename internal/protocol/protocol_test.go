package protocol

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/views"
)

func webFor(t *testing.T, src string) *views.Web {
	t.Helper()
	res, err := interp.Run(lang.MustParse(src), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("runtime error: %v", res.Err)
	}
	return views.Build(res.Trace)
}

const fileLike = `
class File {
  Bool open;
  void openIt() { this.open = true; return; }
  Int read() { return 1; }
  void closeIt() { this.open = false; return; }
}
class Main {
  void use(File f, Int reads) {
    f.openIt();
    let i = 0;
    while (i < reads) { let x = f.read(); i = i + 1; }
    f.closeIt();
    return;
  }
  void main() {
    this.use(new File(), 1);
    this.use(new File(), 3);
    this.use(new File(), 0);
  }
}`

func TestInferFileProtocol(t *testing.T) {
	w := webFor(t, fileLike)
	m := Infer(w, "File")
	if m.Objects != 3 {
		t.Fatalf("objects = %d, want 3", m.Objects)
	}
	wantTrans := [][2]string{
		{Start, "openIt"},
		{"openIt", "read"},
		{"read", "read"},
		{"read", "closeIt"},
		{"openIt", "closeIt"}, // the zero-read lifetime
		{"closeIt", End},
	}
	for _, tr := range wantTrans {
		if !m.Allows(tr[0], tr[1]) {
			t.Errorf("missing transition %s -> %s\n%s", tr[0], tr[1], m)
		}
	}
	if m.Allows("closeIt", "read") {
		t.Error("read-after-close must not be inferred")
	}
	if m.Allows(Start, "read") {
		t.Error("read-before-open must not be inferred")
	}
	if !strings.Contains(m.String(), "openIt -> read") {
		t.Errorf("render:\n%s", m)
	}
	states := m.States()
	if len(states) < 5 {
		t.Errorf("states = %v", states)
	}
}

func TestInferIgnoresOtherClasses(t *testing.T) {
	w := webFor(t, fileLike)
	m := Infer(w, "Main")
	if m.Objects != 1 {
		t.Errorf("Main objects = %d", m.Objects)
	}
	if m.Allows("openIt", "read") {
		t.Error("File transitions leaked into Main model")
	}
}

func TestDiffModels(t *testing.T) {
	w1 := webFor(t, fileLike)
	// The "new version" reads after closing.
	srcV2 := strings.Replace(fileLike,
		"f.closeIt();\n    return;",
		"f.closeIt();\n    let y = f.read();\n    return;", 1)
	w2 := webFor(t, srcV2)
	old := Infer(w1, "File")
	new_ := Infer(w2, "File")
	changes := DiffModels(old, new_)
	foundAdded := false
	for _, c := range changes {
		if c.Added && c.From == "closeIt" && c.To == "read" {
			foundAdded = true
		}
	}
	if !foundAdded {
		t.Errorf("read-after-close drift not detected: %v", changes)
	}
	// Diffing a model against itself yields nothing.
	if got := DiffModels(old, old); len(got) != 0 {
		t.Errorf("self-diff = %v", got)
	}
}

func TestCheckTraceTypestate(t *testing.T) {
	decl := Decl{
		Class: "File",
		Allowed: map[string][]string{
			Start:    {"openIt"},
			"openIt": {"read", "closeIt"},
			"read":   {"read", "closeIt"},
		},
	}
	// Conforming program: no violations.
	w := webFor(t, fileLike)
	if v := CheckTrace(w, decl); len(v) != 0 {
		t.Errorf("conforming trace flagged: %v", v)
	}
	// Violating program: read before open and read after close.
	bad := `
class File {
  Bool open;
  void openIt() { this.open = true; return; }
  Int read() { return 1; }
  void closeIt() { this.open = false; return; }
}
class Main {
  void main() {
    let f = new File();
    let x = f.read();
    f.openIt();
    f.closeIt();
    let y = f.read();
  }
}`
	w2 := webFor(t, bad)
	v := CheckTrace(w2, decl)
	// Three violations: the premature read, the openIt after that read
	// (the checker tracks the actual object state, so the illegal read
	// cascades), and the read after close.
	if len(v) != 3 {
		t.Fatalf("violations = %v, want 3", v)
	}
	if v[0].From != Start || v[0].To != "read" {
		t.Errorf("first violation = %v", v[0])
	}
	if v[1].From != "read" || v[1].To != "openIt" {
		t.Errorf("second violation = %v", v[1])
	}
	if v[2].From != "closeIt" || v[2].To != "read" {
		t.Errorf("third violation = %v", v[2])
	}
	if !strings.Contains(v[0].String(), "not permitted") {
		t.Errorf("render: %s", v[0])
	}
}

func TestSimpleMethod(t *testing.T) {
	cases := map[string]string{
		"File.read/0":   "read",
		"C.m/2":         "m",
		"String.concat": "concat",
		"bare":          "bare",
	}
	for in, want := range cases {
		if got := simpleMethod(in); got != want {
			t.Errorf("simpleMethod(%q) = %q, want %q", in, got, want)
		}
	}
}
