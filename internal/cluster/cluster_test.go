package cluster

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

func threeNodes(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{
		Self: "b",
		Peers: []Peer{
			{ID: "c", URL: "http://c:7077"},
			{ID: "a", URL: "http://a:7077"},
			{ID: "b", URL: "http://b:7077"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://10.0.0.1:7077, b=http://10.0.0.2:7077,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[1].URL != "http://10.0.0.2:7077" {
		t.Fatalf("peers = %+v", peers)
	}
	for _, bad := range []string{"", "a=", "=http://x", "justanid", "a=notaurl", "a=http://x,a=http://y"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Self: "zz", Peers: []Peer{{ID: "a", URL: "http://a"}}}); err == nil {
		t.Fatal("accepted self not in peer list")
	}
	if _, err := New(Options{Self: "a"}); err == nil {
		t.Fatal("accepted empty peer list")
	}
}

// TestOwnerDeterministicAndBalanced: every node computes the same
// owner regardless of peer-list order, ranges are contiguous in
// digest space, and random digests spread across all nodes.
func TestOwnerDeterministicAndBalanced(t *testing.T) {
	c1 := threeNodes(t)
	c2, err := New(Options{Self: "a", Peers: []Peer{
		{ID: "a", URL: "http://a:7077"},
		{ID: "b", URL: "http://b:7077"},
		{ID: "c", URL: "http://c:7077"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		var d trace.Digest
		sum := sha256.Sum256([]byte(fmt.Sprintf("trace-%d", i)))
		copy(d[:], sum[:])
		o1, o2 := c1.Owner(d), c2.Owner(d)
		if o1.ID != o2.ID {
			t.Fatalf("owner disagreement for %x: %s vs %s", d[:4], o1.ID, o2.ID)
		}
		counts[o1.ID]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] < 600 {
			t.Fatalf("node %s owns only %d of 3000 (want roughly a third): %v", id, counts[id], counts)
		}
	}
	// Range boundaries: the first two bytes alone decide ownership.
	var lo, hi trace.Digest
	hi[0], hi[1] = 0xff, 0xff
	if got := c1.Owner(lo).ID; got != "a" {
		t.Fatalf("owner(0x0000) = %s, want a", got)
	}
	if got := c1.Owner(hi).ID; got != "c" {
		t.Fatalf("owner(0xffff) = %s, want c", got)
	}
	if !c1.IsLocal(mustOwnedBy(t, c1, "b")) {
		t.Fatal("IsLocal false for an owned digest")
	}
}

// mustOwnedBy finds a digest the given node owns.
func mustOwnedBy(t *testing.T, c *Cluster, id string) trace.Digest {
	t.Helper()
	for i := 0; i < 65536; i++ {
		var d trace.Digest
		d[0], d[1] = byte(i>>8), byte(i)
		if c.Owner(d).ID == id {
			return d
		}
	}
	t.Fatalf("no digest owned by %s", id)
	return trace.Digest{}
}

func TestForwardRoundTrip(t *testing.T) {
	var gotMarker, gotPath, gotQuery, gotBody string
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMarker = r.Header.Get(ForwardedHeader)
		gotPath = r.URL.Path
		gotQuery = r.URL.RawQuery
		b := make([]byte, 64)
		n, _ := r.Body.Read(b)
		gotBody = string(b[:n])
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer peerSrv.Close()

	c, err := New(Options{Self: "a", Peers: []Peer{
		{ID: "a", URL: "http://a:7077"},
		{ID: "b", URL: peerSrv.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/traces?name=x", strings.NewReader("ignored"))
	res, err := c.Forward(context.Background(), Peer{ID: "b", URL: peerSrv.URL}, r, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if gotMarker != "a" || gotPath != "/traces" || gotQuery != "name=x" || gotBody != "payload" {
		t.Fatalf("peer saw marker=%q path=%q query=%q body=%q", gotMarker, gotPath, gotQuery, gotBody)
	}
	if res.Status != http.StatusCreated || string(res.Body) != `{"ok":true}` {
		t.Fatalf("result = %d %q", res.Status, res.Body)
	}
	rec := httptest.NewRecorder()
	res.WriteTo(rec, "b")
	if rec.Code != http.StatusCreated || rec.Header().Get(NodeHeader) != "b" ||
		rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("replayed response: %d %v", rec.Code, rec.Header())
	}
	if c.Counters().Forwards.Load() != 1 || c.Counters().ForwardErrors.Load() != 0 {
		t.Fatalf("counters: %+v", c.Counters().Snapshot())
	}
}

// TestForwardErrorsLeaveWriterUntouched: transport failures and 5xx
// answers come back as errors with no bytes written anywhere, so the
// caller can serve the local fallback; 4xx answers are the peer's
// verdict and pass through.
func TestForwardErrorsLeaveWriterUntouched(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	downURL := down.URL
	down.Close() // transport-level failure

	c, err := New(Options{Self: "a", Peers: []Peer{
		{ID: "a", URL: "http://a:7077"},
		{ID: "b", URL: downURL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodGet, "/traces/abcd", nil)
	if _, err := c.Forward(context.Background(), Peer{ID: "b", URL: downURL}, r, nil); err == nil {
		t.Fatal("forward to a dead peer succeeded")
	}

	fiveHundred := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer fiveHundred.Close()
	if _, err := c.Forward(context.Background(), Peer{ID: "b", URL: fiveHundred.URL}, r, nil); err == nil {
		t.Fatal("5xx peer answer did not error")
	}

	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such trace", http.StatusNotFound)
	}))
	defer notFound.Close()
	res, err := c.Forward(context.Background(), Peer{ID: "b", URL: notFound.URL}, r, nil)
	if err != nil {
		t.Fatalf("4xx should pass through, got %v", err)
	}
	if res.Status != http.StatusNotFound {
		t.Fatalf("status = %d", res.Status)
	}
	if got := c.Counters().ForwardErrors.Load(); got != 2 {
		t.Fatalf("forward errors = %d, want 2", got)
	}
}

func TestProbeAll(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer up.Close()
	downSrv := httptest.NewServer(http.NotFoundHandler())
	downURL := downSrv.URL
	downSrv.Close()

	c, err := New(Options{Self: "a", Peers: []Peer{
		{ID: "a", URL: "http://self:7077"},
		{ID: "b", URL: up.URL},
		{ID: "c", URL: downURL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	health := c.ProbeAll(context.Background())
	byID := map[string]PeerHealth{}
	for _, h := range health {
		byID[h.ID] = h
	}
	if !byID["a"].Self || !byID["a"].Healthy {
		t.Fatalf("self health: %+v", byID["a"])
	}
	if !byID["b"].Healthy {
		t.Fatalf("up peer unhealthy: %+v", byID["b"])
	}
	if byID["c"].Healthy || byID["c"].Error == "" {
		t.Fatalf("down peer healthy: %+v", byID["c"])
	}
}
