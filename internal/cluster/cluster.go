// Package cluster implements digest-sharded ownership and request
// forwarding for a group of rprism-serve replicas sharing one blob
// bucket.
//
// Ownership is a static ring over the first two bytes of the trace
// digest: the 65536 possible values are split into contiguous ranges,
// one per node, nodes sorted by ID. Because digests are uniformly
// distributed (SHA-256 of the canonical encoding), the ranges balance
// load without coordination — every node computes the same owner from
// the same peer list, so there is no membership protocol and no
// metadata service; the config is the ring.
//
// Requests for a trace another node owns are forwarded — one hop,
// guarded by the X-Rprism-Forwarded header: a forwarded request is
// always served locally, so two nodes with disagreeing configs
// degrade to an extra hop, never a loop. When the owner is down the
// caller falls back to serving from the shared bucket: slower (a
// hydration instead of a warm cache hit) but correct, because every
// admitted trace is durable in the bucket before any node serves it.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ForwardedHeader marks a request that already took its one allowed
// forwarding hop; a receiving node serves it locally no matter who
// owns the digest.
const ForwardedHeader = "X-Rprism-Forwarded"

// NodeHeader names, on every response from a cluster-enabled server,
// the node that actually served the request — the observable trail of
// forwarding and fallback decisions.
const NodeHeader = "X-Rprism-Node"

// Peer is one rprism-serve replica in the ring.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL, no trailing slash
}

// ParsePeers parses the -peers spelling: comma-separated id=url pairs,
// e.g. "a=http://10.0.0.1:7077,b=http://10.0.0.2:7077". IDs must be
// unique; URLs must be absolute.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawurl, ok := strings.Cut(part, "=")
		if !ok || id == "" || rawurl == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		u, err := url.Parse(rawurl)
		if err != nil || !u.IsAbs() || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad peer URL %q", rawurl)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimSuffix(rawurl, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// Options configure a Cluster.
type Options struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full ring, this node included.
	Peers []Peer
	// Client overrides the forwarding HTTP client (default 60s
	// timeout — forwarded diffs can be slow).
	Client *http.Client
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
}

// Cluster is one node's view of the ring. All methods are safe for
// concurrent use.
type Cluster struct {
	self     Peer
	peers    []Peer // sorted by ID; the ring order
	client   *http.Client
	probeTO  time.Duration
	counters metrics.ClusterCounters
}

// New builds a node's cluster view.
func New(opts Options) (*Cluster, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	peers := append([]Peer(nil), opts.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	var self *Peer
	for i := range peers {
		if peers[i].ID == opts.Self {
			self = &peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: node id %q not in peer list", opts.Self)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	probeTO := opts.ProbeTimeout
	if probeTO <= 0 {
		probeTO = 2 * time.Second
	}
	return &Cluster{self: *self, peers: peers, client: client, probeTO: probeTO}, nil
}

// Self returns this node's peer record.
func (c *Cluster) Self() Peer { return c.self }

// Peers returns the ring, sorted by ID.
func (c *Cluster) Peers() []Peer { return append([]Peer(nil), c.peers...) }

// Counters exposes the node's forwarding/fallback counters (the
// server wires them into /stats).
func (c *Cluster) Counters() *metrics.ClusterCounters { return &c.counters }

// Owner returns the peer owning a digest: the ring splits the 2^16
// values of the first two digest bytes into contiguous equal ranges,
// one per peer in ID order. Every node computes the same answer from
// the same peer list.
func (c *Cluster) Owner(id trace.Digest) Peer {
	v := int(id[0])<<8 | int(id[1])
	return c.peers[v*len(c.peers)/65536]
}

// IsLocal reports whether this node owns the digest.
func (c *Cluster) IsLocal(id trace.Digest) bool {
	return c.Owner(id).ID == c.self.ID
}

// ForwardResult is a fully buffered peer response: Forward never
// streams, so a peer that dies mid-response is detected here and the
// caller still has an untouched ResponseWriter for the local
// fallback.
type ForwardResult struct {
	Status int
	Header http.Header
	Body   []byte
}

// Forward replays a request against a peer: same method, path and
// query, the given body (nil for bodyless methods), the forwarded
// marker set. The response is buffered in full; transport errors and
// 5xx answers return an error so the caller can fall back, while 2-4xx
// answers are the peer's verdict and are returned as-is.
func (c *Cluster) Forward(ctx context.Context, peer Peer, r *http.Request, body []byte) (*ForwardResult, error) {
	c.counters.Forwards.Add(1)
	u := peer.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, rd)
	if err != nil {
		c.counters.ForwardErrors.Add(1)
		return nil, fmt.Errorf("cluster: forward to %s: %w", peer.ID, err)
	}
	for _, h := range []string{"Content-Type", "Accept", "Last-Event-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, c.self.ID)
	resp, err := c.client.Do(req)
	if err != nil {
		c.counters.ForwardErrors.Add(1)
		return nil, fmt.Errorf("cluster: forward to %s: %w", peer.ID, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.counters.ForwardErrors.Add(1)
		return nil, fmt.Errorf("cluster: forward to %s: %w", peer.ID, err)
	}
	if resp.StatusCode >= 500 {
		c.counters.ForwardErrors.Add(1)
		return nil, fmt.Errorf("cluster: forward to %s: HTTP %d: %s",
			peer.ID, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return &ForwardResult{Status: resp.StatusCode, Header: resp.Header, Body: data}, nil
}

// WriteTo replays the buffered peer response onto w, naming the peer
// that served it.
func (f *ForwardResult) WriteTo(w http.ResponseWriter, servedBy string) {
	for _, h := range []string{"Content-Type", "Content-Disposition"} {
		if v := f.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(NodeHeader, servedBy)
	w.WriteHeader(f.Status)
	w.Write(f.Body)
}

// PeerHealth is one node's health as seen from this node.
type PeerHealth struct {
	Peer
	Self    bool   `json:"self"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// ProbeAll probes every peer's /healthz in parallel. The local node is
// reported healthy without a probe (we are running this code).
func (c *Cluster) ProbeAll(ctx context.Context) []PeerHealth {
	out := make([]PeerHealth, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		out[i] = PeerHealth{Peer: p, Self: p.ID == c.self.ID}
		if out[i].Self {
			out[i].Healthy = true
			continue
		}
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.probeTO)
			defer cancel()
			err := c.probe(pctx, p)
			out[i].Healthy = err == nil
			if err != nil {
				out[i].Error = err.Error()
			}
		}(i, p)
	}
	wg.Wait()
	return out
}

func (c *Cluster) probe(ctx context.Context, p Peer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// FetchStats retrieves a peer's /stats as raw JSON (decoded by the
// server's aggregation handler, which owns the wire types).
func (c *Cluster) FetchStats(ctx context.Context, p Peer) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, c.self.ID)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return data, nil
}
